"""Independent sampling snapshot evaluation (Section IV-B1).

Each snapshot query is answered from scratch: draw uniformly random tuples
(with replacement, via two-stage sampling), estimate the mean by the sample
mean, and size the sample by the CLT (Eq. 6). Because the population
standard deviation is unknown, the evaluator samples *sequentially*: a
pilot round estimates ``sigma``, the required ``n`` is recomputed, and
extra samples are drawn until the drawn count covers the requirement
(bounded by ``max_rounds`` top-up rounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.estimators import (
    achieved_confidence,
    achieved_epsilon,
    ratio_estimate,
    required_sample_size,
    sample_mean_and_variance,
    variance_target,
)
from repro.core.query import Query
from repro.core.snapshot import SnapshotEstimate
from repro.db.aggregates import (
    AggregateOp,
    mean_error_budget,
    sample_contribution,
    scale_factor,
)
from repro.db.relation import P2PDatabase
from repro.errors import QueryError
from repro.sampling.operator import SampleSource


@dataclass(frozen=True)
class EvaluatorConfig:
    """Sequential-sampling knobs shared by both evaluators.

    ``pilot_size`` seeds the sigma estimate on the first round;
    ``max_rounds`` bounds the top-up iterations; ``max_sample_size`` guards
    against infeasible precision requests; ``sigma_floor`` keeps the size
    computation meaningful when the pilot happens to see identical values.
    """

    pilot_size: int = 30
    max_rounds: int = 4
    max_sample_size: int = 1_000_000
    sigma_floor: float = 1e-12

    def __post_init__(self) -> None:
        if self.pilot_size < 2:
            raise QueryError(f"pilot_size must be >= 2, got {self.pilot_size}")
        if self.max_rounds < 1:
            raise QueryError(f"max_rounds must be >= 1, got {self.max_rounds}")


class IndependentEvaluator:
    """Evaluates snapshot queries by classical independent sampling.

    Parameters
    ----------
    database, operator, origin:
        Where samples come from: the operator's two-stage sampling against
        ``database``, walks originating at ``origin``.
    query:
        The aggregate query; its op defines the value transform and scale.
    population_size_provider:
        Callable returning the relation size ``N`` used to scale SUM/COUNT
        (oracle in experiments, estimator in deployments). AVG ignores it.
    """

    def __init__(
        self,
        database: P2PDatabase,
        operator: SampleSource,
        origin: int,
        query: Query,
        population_size_provider: Callable[[], float] | None = None,
        config: EvaluatorConfig | None = None,
    ) -> None:
        self._database = database
        self._operator = operator
        self._origin = origin
        self._query = query
        self._population_size_provider = (
            population_size_provider
            if population_size_provider is not None
            else lambda: database.n_tuples
        )
        self._config = config if config is not None else EvaluatorConfig()
        self._last_sigma: float | None = None

    @property
    def config(self) -> EvaluatorConfig:
        return self._config

    def plan_demand(self, epsilon: float, confidence: float) -> int:
        """Forecast how many fresh samples the next evaluate() will draw.

        Pure read (no sampling, no state change): before the first
        occasion there is no sigma estimate, so the forecast is the pilot
        size; afterwards it is Eq. 6 sized from the last occasion's sigma.
        The session uses this to size coalesced prefetch batches — a wrong
        forecast only shifts the pool hit/miss split, never correctness,
        because evaluate() still tops up sequentially.
        """
        config = self._config
        if self._last_sigma is None:
            return config.pilot_size
        population = int(round(self._population_size_provider()))
        epsilon_mean = mean_error_budget(self._query.op, epsilon, population)
        if epsilon_mean == float("inf"):
            return config.pilot_size
        return required_sample_size(
            self._last_sigma,
            epsilon_mean,
            confidence,
            minimum=config.pilot_size,
            maximum=config.max_sample_size,
        )

    def _sample_values(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw up to ``n`` samples; returns ``(y, indicator)`` arrays.

        Partial mode: under the failure model the overlay may lose walks,
        so fewer than ``n`` values can come back. The evaluator degrades
        (flagging the estimate) rather than aborting the query.
        """
        samples = self._operator.sample_tuples(
            self._database, n, self._origin, allow_partial=True
        )
        query = self._query
        pairs = [
            sample_contribution(query.op, query.expression, query.predicate, s.row)
            for s in samples
        ]
        values = np.array([pair[0] for pair in pairs], dtype=float)
        indicators = np.array([pair[1] for pair in pairs], dtype=float)
        return values, indicators

    def evaluate(
        self, time: int, epsilon: float, confidence: float
    ) -> SnapshotEstimate:
        """Evaluate the snapshot query at ``time`` to ``(epsilon, p)``.

        ``epsilon`` is in aggregate units; it is converted to the mean-level
        budget using the population size (AVG passes through). AVG uses the
        ratio estimator, which reduces to the plain sample mean when the
        query has no predicate.
        """
        population = int(round(self._population_size_provider()))
        epsilon_mean = mean_error_budget(self._query.op, epsilon, population)
        if self._query.op is AggregateOp.AVG:
            mean, variance, n, degraded = self._evaluate_ratio(
                epsilon_mean, confidence
            )
        else:
            mean, variance, n, degraded = self._evaluate_mean(
                epsilon_mean, confidence
            )
        scale = scale_factor(self._query.op, population)
        return SnapshotEstimate(
            time=time,
            mean=mean,
            aggregate=mean * scale,
            variance=variance,
            n_total=n,
            n_fresh=n,
            n_retained=0,
            population_size=population,
            degraded=degraded,
            achieved_epsilon=(
                achieved_epsilon(variance, confidence) * scale
                if degraded
                else None
            ),
            achieved_confidence=(
                achieved_confidence(epsilon_mean, variance)
                if degraded and epsilon_mean != float("inf")
                else None
            ),
        )

    def _evaluate_mean(
        self, epsilon_mean: float, confidence: float
    ) -> tuple[float, float, int, bool]:
        """Sequential CLT sizing on the (masked) per-tuple values.

        Returns ``(mean, variance-of-mean, n, degraded)``. ``degraded``
        means the overlay returned fewer samples than Eq. 6 required, so
        the promised precision does not hold (the estimate itself is still
        unbiased; only its interval widens).
        """
        config = self._config
        values = self._sample_values(config.pilot_size)[0]
        if values.size == 0:
            raise QueryError(
                "the overlay returned no samples at all; cannot estimate"
            )
        needed = int(values.size)
        for _ in range(config.max_rounds):
            _, variance = sample_mean_and_variance(values)
            sigma = max(float(np.sqrt(variance)), config.sigma_floor)
            if epsilon_mean == float("inf"):
                needed = int(values.size)
                break
            needed = required_sample_size(
                sigma,
                epsilon_mean,
                confidence,
                minimum=config.pilot_size,
                maximum=config.max_sample_size,
            )
            if needed <= values.size:
                break
            extra = self._sample_values(needed - values.size)[0]
            if extra.size == 0:
                break  # the overlay is delivering nothing; degrade
            values = np.concatenate([values, extra])
        mean, variance = sample_mean_and_variance(values)
        degraded = values.size < needed
        self._last_sigma = max(
            float(np.sqrt(variance)), config.sigma_floor
        )
        return mean, variance / values.size, int(values.size), degraded

    def _evaluate_ratio(
        self, epsilon_mean: float, confidence: float
    ) -> tuple[float, float, int, bool]:
        """Sequential sizing of the ratio estimator (AVG, maybe filtered).

        Returns ``(estimate, variance, n, degraded)``; ``degraded`` means
        the final estimator variance still exceeds the ``(epsilon, p)``
        variance target after all top-up rounds.
        """
        config = self._config
        values, indicators = self._sample_values(config.pilot_size)
        if values.size == 0:
            raise QueryError(
                "the overlay returned no samples at all; cannot estimate"
            )
        estimate, variance = None, None
        for round_index in range(config.max_rounds + 1):
            try:
                estimate, variance = ratio_estimate(values, indicators)
            except QueryError:
                if round_index >= config.max_rounds:
                    raise
                # nothing qualified yet: widen the sample and retry
                extra_values, extra_indicators = self._sample_values(
                    len(values)
                )
                if extra_values.size == 0:
                    raise
                values = np.concatenate([values, extra_values])
                indicators = np.concatenate([indicators, extra_indicators])
                continue
            if epsilon_mean == float("inf") or round_index >= config.max_rounds:
                break
            target = variance_target(epsilon_mean, confidence)
            if variance <= target:
                break
            # per-sample variance rate; size the full requirement from it
            rate = variance * values.size
            needed = max(values.size + 1, int(np.ceil(rate / target)))
            if needed > config.max_sample_size:
                raise QueryError(
                    f"required sample size {needed} exceeds the configured "
                    f"maximum {config.max_sample_size}; the precision "
                    f"request is infeasible for this population"
                )
            extra_values, extra_indicators = self._sample_values(
                needed - values.size
            )
            if extra_values.size == 0:
                break  # the overlay is delivering nothing; degrade
            values = np.concatenate([values, extra_values])
            indicators = np.concatenate([indicators, extra_indicators])
        assert estimate is not None and variance is not None
        degraded = epsilon_mean != float("inf") and variance > variance_target(
            epsilon_mean, confidence
        )
        # per-sample sigma equivalent of the ratio estimator's variance
        # rate, so plan_demand can forecast via the same Eq. 6 sizing
        self._last_sigma = max(
            float(np.sqrt(variance * values.size)), config.sigma_floor
        )
        return estimate, variance, int(values.size), degraded
