"""Taylor-polynomial extrapolation of the running aggregate (Section IV-A).

The running aggregate ``X[t]`` is modeled as an analytic function; near the
latest update time ``t_u`` it is approximated by a degree-``d`` Taylor
polynomial ``P_d[t]`` with Lagrange remainder

    |X[t] - P_d[t]| <= |R_d[t]|,
    R_d[t] = (t - t_u)^{d+1} / (d+1)! * X^{(d+1)}(c),  c in [t_u, t].

``P_d`` is fit to the ``d+1`` most recent snapshot results by
Levenberg-Marquardt non-linear least squares (the paper's choice; for a
polynomial model it converges to the interpolant in one round but is kept
for fidelity and for robustness to degenerate geometry).

The paper leaves the ``(d+1)``-th derivative bound unspecified (its ``c_k``
assumes oracle knowledge of ``X``). We estimate the remainder *rate*
``M/(d+1)!`` as the leading coefficient of a least-squares degree-``d+1``
polynomial over a wider ``remainder_window`` of recent results: the exact
Newton divided difference of order ``d+1`` equals that coefficient when the
window is minimal (``d+2`` points), and widening the window averages out
snapshot-estimation noise — which an order-``d+1`` difference would
otherwise amplify by ``~2^{d+1}``, making high-degree predictors absurdly
conservative. A configurable safety factor scales the estimate.

The next update time is then the earliest ``t`` with (Eq. 4)

    |P_d[t] - P_d[t_u]| + |R_d[t]| > delta.

``PRED-k`` in the experiments = :class:`TaylorExtrapolator` with ``k``
history points (degree ``k-1``); it needs ``k+1`` history points in total
(one extra for the remainder estimate), during which the scheduler falls
back to continuous querying (the bootstrapping period).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import least_squares

from repro.errors import QueryError


@dataclass(frozen=True)
class ExtrapolationResult:
    """Outcome of one extrapolation: the predicted next update time and
    the fitted polynomial pieces used to derive it (for introspection)."""

    next_time: int
    coefficients: np.ndarray  # poly coefficients in (t - t_u) powers, ascending
    remainder_rate: float  # |divided difference| = M / (d+1)!
    capped: bool  # True when the horizon cap, not Eq. 4, chose next_time

    @property
    def trigger_reason(self) -> str:
        """Why the snapshot at ``next_time`` will run: the Eq. 4 drift
        bound (``"predicted_drift"``) or the liveness horizon cap
        (``"horizon_capped"``)."""
        return "horizon_capped" if self.capped else "predicted_drift"


class TaylorExtrapolator:
    """Predicts when the aggregate will have drifted by ``delta``.

    Parameters
    ----------
    n_points:
        Number of history points fit by the polynomial (the ``k`` of
        PRED-k); polynomial degree is ``n_points - 1``.
    max_horizon:
        Upper bound on how far ahead an update may be scheduled. A flat
        history would otherwise postpone re-evaluation forever; real
        deployments always keep a liveness probe.
    safety_factor:
        Multiplier on the estimated remainder rate (>= 1 makes the
        prediction more conservative, never less correct).
    remainder_window:
        History points used for the remainder-rate fit. Defaults to
        ``2 * n_points`` (minimum ``n_points + 1``); larger = smoother,
        less noise-inflated remainder.
    """

    def __init__(
        self,
        n_points: int = 3,
        max_horizon: int = 64,
        safety_factor: float = 1.0,
        remainder_window: int | None = None,
    ) -> None:
        if n_points < 2:
            raise QueryError(f"extrapolation needs >= 2 points, got {n_points}")
        if max_horizon < 1:
            raise QueryError(f"max_horizon must be >= 1, got {max_horizon}")
        if safety_factor < 0:
            raise QueryError(f"safety_factor must be >= 0, got {safety_factor}")
        self.n_points = n_points
        self.max_horizon = max_horizon
        self.safety_factor = safety_factor
        if remainder_window is None:
            remainder_window = 2 * n_points
        if remainder_window < n_points + 1:
            raise QueryError(
                f"remainder_window must be >= n_points + 1, got "
                f"{remainder_window}"
            )
        self.remainder_window = remainder_window

    @property
    def required_history(self) -> int:
        """History points needed before extrapolation can run."""
        return self.remainder_window

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------

    @staticmethod
    def _fit_polynomial(
        times: np.ndarray, values: np.ndarray, degree: int
    ) -> np.ndarray:
        """LM least-squares fit; returns ascending coefficients in ``t - t_u``.

        ``times`` are shifted so the last point is 0, which conditions the
        Vandermonde geometry and makes ``coefficients[0] ~= X[t_u]``.
        """
        shifted = times - times[-1]

        def residuals(coefficients: np.ndarray) -> np.ndarray:
            fitted = np.zeros_like(shifted, dtype=float)
            for power, coefficient in enumerate(coefficients):
                fitted += coefficient * shifted**power
            return fitted - values

        initial = np.polyfit(shifted, values, degree)[::-1]
        solution = least_squares(residuals, initial, method="lm")
        return solution.x

    @staticmethod
    def _divided_difference(times: np.ndarray, values: np.ndarray) -> float:
        """Newton divided difference of maximal order over the points."""
        table = values.astype(float).copy()
        n = times.size
        for level in range(1, n):
            for i in range(n - level):
                span = times[i + level] - times[i]
                if span == 0:
                    raise QueryError("duplicate history times in extrapolation")
                table[i] = (table[i + 1] - table[i]) / span
        return float(table[0])

    def _remainder_rate(self, times: np.ndarray, values: np.ndarray) -> float:
        """Estimate ``M / (d+1)!`` — the remainder's per-step growth rate.

        The leading coefficient of a least-squares degree-``d+1`` fit over
        the remainder window; with a minimal window (``d+2`` points) this
        is exactly the Newton divided difference of order ``d+1``.
        """
        degree = self.n_points  # = d + 1
        if times.size == degree + 1:
            return abs(self._divided_difference(times, values))
        shifted = times - times[-1]
        coefficients = np.polyfit(shifted, values, degree)
        return abs(float(coefficients[0]))

    @staticmethod
    def _evaluate(coefficients: np.ndarray, offset: float) -> float:
        value = 0.0
        for power, coefficient in enumerate(coefficients):
            value += coefficient * offset**power
        return value

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------

    def predict_next_update(
        self,
        history: list[tuple[int, float]],
        delta: float,
    ) -> ExtrapolationResult:
        """Earliest ``t > t_u`` where Eq. 4 predicts drift beyond ``delta``.

        ``history`` holds ``(time, aggregate)`` pairs in increasing time
        order; at least :attr:`required_history` points are needed.
        """
        if delta < 0:
            raise QueryError(f"delta must be >= 0, got {delta}")
        if len(history) < self.required_history:
            raise QueryError(
                f"need {self.required_history} history points, got {len(history)}"
            )
        window = history[-self.required_history :]
        times = np.array([t for t, _ in window], dtype=float)
        values = np.array([x for _, x in window], dtype=float)
        if np.any(np.diff(times) <= 0):
            raise QueryError("history times must be strictly increasing")

        # least-squares fit over the whole window: snapshot results carry
        # estimation noise ~epsilon, and exact interpolation of n_points
        # noisy values amplifies it exponentially in the degree. With
        # near-exact snapshots this coincides with interpolation (the
        # paper's "robust estimation ... via least squares").
        coefficients = self._fit_polynomial(times, values, self.n_points - 1)
        remainder_rate = self.safety_factor * self._remainder_rate(times, values)
        t_u = int(times[-1])
        baseline = self._evaluate(coefficients, 0.0)
        degree = self.n_points - 1
        for offset in range(1, self.max_horizon + 1):
            drift = abs(self._evaluate(coefficients, float(offset)) - baseline)
            remainder = remainder_rate * float(offset) ** (degree + 1)
            if drift + remainder > delta:
                return ExtrapolationResult(
                    next_time=t_u + offset,
                    coefficients=coefficients,
                    remainder_rate=remainder_rate,
                    capped=False,
                )
        return ExtrapolationResult(
            next_time=t_u + self.max_horizon,
            coefficients=coefficients,
            remainder_rate=remainder_rate,
            capped=True,
        )


def lagrange_remainder_bound(
    derivative_bound: float, degree: int, offset: float
) -> float:
    """``|R_d| <= M |t-t_u|^{d+1} / (d+1)!`` for a known derivative bound ``M``.

    Utility for analytical tests; the extrapolator itself folds the
    factorial into the divided-difference estimate.
    """
    if degree < 0:
        raise QueryError(f"degree must be >= 0, got {degree}")
    return (
        derivative_bound
        * abs(offset) ** (degree + 1)
        / math.factorial(degree + 1)
    )
