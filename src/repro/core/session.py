"""The multi-query Digest session: many queries, one sampling substrate.

The paper packages sampling as a database operator (Section III) exactly
so its cost — Metropolis walks over the overlay — can be amortized across
queries. :class:`DigestSession` is the layer that does the amortizing:

* it owns the overlay-facing substrate once per querying node — one
  :class:`~repro.network.messaging.MessageLedger`, one tracer, one
  :class:`~repro.sampling.pool.SamplePool` (which in turn owns the
  :class:`~repro.sampling.operator.SamplingOperator`);
* each registered :class:`~repro.core.query.ContinuousQuery` becomes a
  :class:`QueryRuntime` — its evaluator, scheduler, running result,
  history, and subscriptions — whose evaluator draws through a
  :class:`~repro.sampling.pool.PoolLease` so co-resident queries reuse
  each other's same-occasion samples (each query's ``(epsilon, p)``
  contract holds marginally; see :mod:`repro.sampling.pool`);
* when two or more queries come due at the same tick, the session asks
  each evaluator to *plan* its fresh-sample demand
  (``plan_demand``), coalesces the demands
  (:func:`~repro.core.scheduler.coalesce_demands` — the batch needs only
  the **maximum**, not the sum), and prefetches one shared walk batch
  into the pool before any query evaluates. The batch's trace span
  attributes it to every consuming query.

Determinism: queries evaluate in sorted query-id order against one shared
RNG, so a run is reproducible from its seed; a session with a single
query performs *byte-identical* RNG draws to the historical single-query
:class:`~repro.core.engine.DigestEngine` (which is now a facade over this
class) — prefetching only engages at two or more co-due queries, and a
cold pool passes single-query requests straight through to the operator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

import numpy as np

from repro.core.independent import EvaluatorConfig, IndependentEvaluator
from repro.core.query import ContinuousQuery
from repro.core.repeated import RepeatedEvaluator
from repro.core.result import NotificationFilter, RunningResult, UpdateRecord
from repro.core.scheduler import (
    ContinuousScheduler,
    ExtrapolationScheduler,
    SnapshotScheduler,
    WalkDemand,
    coalesce_demands,
)
from repro.core.estimators import achieved_confidence, achieved_epsilon
from repro.core.snapshot import SnapshotEstimate
from repro.db.aggregates import mean_error_budget, scale_factor
from repro.db.relation import P2PDatabase
from repro.errors import QueryError
from repro.network.faults import FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.partitions import PartitionPlan
from repro.obs.alerts import AlertEngine, AlertRule
from repro.obs.audit import META_PROMISES, AuditVerdict, GuaranteeAuditor
from repro.obs.live import META_FINISHED_AT, LivePipeline, WindowConfig
from repro.obs.schema import SPAN_POOL_SERVE, SPAN_SNAPSHOT_QUERY, SPAN_WALK
from repro.obs.tracer import RunMetricsSink, SinkTracer, Span, TraceEvent
from repro.sampling.operator import SamplerConfig, SampleSource
from repro.sampling.pool import PoolConfig, SamplePool
from repro.sim.engine import PRIORITY_QUERY, SimulationEngine
from repro.sim.metrics import RunMetrics


@dataclass(frozen=True)
class EngineConfig:
    """Algorithm selection and tuning for one continuous query.

    ``scheduler`` is ``"all"`` or ``"pred"``; ``pred_points`` is the ``k``
    of PRED-k. ``evaluator`` is ``"independent"`` or ``"repeated"``.
    ``oracle_population=True`` uses the database's true tuple count to
    scale SUM/COUNT (the experiments' setting); ``False`` estimates it by
    capture-recapture sampling each occasion.

    ``forward_revision=True`` (repeated evaluator only) retrospectively
    amends each result update once the next occasion's data allows a
    forward-regression revision (the paper's Section VIII extension; see
    :mod:`repro.core.forward`).
    """

    scheduler: str = "pred"
    evaluator: str = "repeated"
    pred_points: int = 3
    period: int = 1
    max_horizon: int = 64
    safety_factor: float = 1.0
    oracle_population: bool = True
    forward_revision: bool = False
    evaluator_config: EvaluatorConfig | None = None

    def __post_init__(self) -> None:
        if self.scheduler not in ("all", "pred"):
            raise QueryError(
                f"scheduler must be 'all' or 'pred', got {self.scheduler!r}"
            )
        if self.evaluator not in ("independent", "repeated"):
            raise QueryError(
                f"evaluator must be 'independent' or 'repeated', "
                f"got {self.evaluator!r}"
            )


@dataclass(frozen=True)
class QuerySpec:
    """One entry of a :class:`QuerySet`: the query plus its algorithms."""

    query_id: str
    continuous_query: ContinuousQuery
    config: EngineConfig


class QuerySet:
    """An ordered, uniquely-keyed collection of continuous queries.

    The declarative input of a multi-query session: build one (by hand or
    from a spec file via :func:`repro.cli.load_query_set`), then hand it
    to :meth:`DigestSession.add_query_set`.
    """

    def __init__(self) -> None:
        self._specs: list[QuerySpec] = []

    def add(
        self,
        continuous_query: ContinuousQuery,
        config: EngineConfig | None = None,
        query_id: str | None = None,
    ) -> str:
        """Append a query; returns its (possibly auto-assigned) id."""
        assigned = query_id if query_id is not None else f"q{len(self._specs)}"
        if any(spec.query_id == assigned for spec in self._specs):
            raise QueryError(f"duplicate query id {assigned!r}")
        self._specs.append(
            QuerySpec(
                query_id=assigned,
                continuous_query=continuous_query,
                config=config if config is not None else EngineConfig(),
            )
        )
        return assigned

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[QuerySpec]:
        return iter(self._specs)


class _QueryScopedSink:
    """Derives one query's RunMetrics from the session's shared spans.

    Forwards to an inner :class:`~repro.obs.tracer.RunMetricsSink` only
    the spans attributable to this query: its own ``snapshot_query`` and
    ``pool_serve`` spans, and ``walk`` spans whose consumer attribution
    names it. Fault events are substrate-level, not per-query, and are
    ignored here (the session-level metrics carry them).
    """

    needs_span_events = False  # filters on span attrs, forwards to metrics

    def __init__(self, query_id: str, metrics: RunMetrics) -> None:
        self._query_id = query_id
        self._inner = RunMetricsSink(metrics)

    def on_span_end(self, span: Span) -> None:
        if span.name in (SPAN_SNAPSHOT_QUERY,):
            if span.attrs.get("query") == self._query_id:
                self._inner.on_span_end(span)
        elif span.name == SPAN_POOL_SERVE:
            if span.attrs.get("consumer") == self._query_id:
                self._inner.on_span_end(span)
        elif span.name == SPAN_WALK:
            consumers = str(span.attrs.get("consumers", ""))
            if self._query_id in consumers.split(","):
                self._inner.on_span_end(span)

    def on_event(self, event: TraceEvent) -> None:
        return None


class QueryRuntime:
    """One query's live state inside a session (created by the session)."""

    def __init__(
        self,
        query_id: str,
        continuous_query: ContinuousQuery,
        config: EngineConfig,
        evaluator: IndependentEvaluator | RepeatedEvaluator,
        scheduler: SnapshotScheduler,
        source: SampleSource,
    ) -> None:
        self.query_id = query_id
        self.continuous_query = continuous_query
        self.config = config
        self.evaluator = evaluator
        self.scheduler = scheduler
        self.source = source
        self.result = RunningResult()
        self.metrics = RunMetrics()
        self.history: list[tuple[int, float]] = []
        self.subscriptions: list[NotificationFilter] = []
        self.next_due = continuous_query.start_time
        self.next_trigger = "bootstrap"
        #: the session's guarantee audit of the latest snapshot (None
        #: until the first snapshot runs); see :mod:`repro.obs.audit`
        self.audit_verdict: AuditVerdict | None = None

    def due_at(self, time: int) -> bool:
        """Is a snapshot query due for this runtime at ``time``?"""
        return self.continuous_query.active_at(time) and time >= self.next_due

    def finished_after(self, time: int) -> bool:
        """No further snapshot will ever run (the query's window closed)."""
        end = self.continuous_query.end_time
        return end is not None and self.next_due > end


class DigestSession:
    """Many continuous queries answered at one querying node.

    Parameters mirror the historical single-query engine where they
    overlap; ``pool_config`` tunes sample-reuse freshness
    (:class:`~repro.sampling.pool.PoolConfig`) and ``faults`` injects the
    PR 2 failure model into the shared operator.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        database: P2PDatabase,
        origin: int,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        sampler_config: SamplerConfig | None = None,
        pool_config: PoolConfig | None = None,
        faults: FaultPlan | None = None,
        tracer: SinkTracer | None = None,
        partitions: PartitionPlan | None = None,
    ) -> None:
        if origin not in graph:
            raise QueryError(f"querying node {origin} is not in the overlay")
        self._graph = graph
        self._database = database
        self._origin = origin
        self._rng = rng
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.metrics = RunMetrics()
        self.tracer = tracer if tracer is not None else SinkTracer()
        self.tracer.add_sink(RunMetricsSink(self.metrics))
        #: simulated time of the step in progress; wired into the tracer
        #: (unless the caller supplied its own clock) so untimed records
        #: deep inside the sampling stack are stamped with real sim time
        #: — the live pipeline can only window timed records
        self._sim_now = 0
        if not self.tracer.has_clock:
            self.tracer.set_clock(lambda: self._sim_now)
        #: correlated-failure plan; with one wired in, every step
        #: re-derives the origin's reachable scope, invalidates pooled
        #: samples on scope changes, and re-scopes estimates honestly
        self._partitions = partitions
        #: the reachable node set the last step sampled under (None until
        #: the first step with a partition plan)
        self._scope: frozenset[int] | None = None
        self.pool = SamplePool(
            graph,
            rng,
            self.ledger,
            sampler_config,
            faults=faults,
            tracer=self.tracer,
            config=pool_config,
            partitions=partitions,
        )
        self._runtimes: dict[str, QueryRuntime] = {}
        self._next_auto_id = 0
        #: coalesced prefetch batches issued (>= 2 co-due queries)
        self.batches_coalesced = 0
        #: live guarantee auditor; every registered query's promise is
        #: declared here and every snapshot is observed against it
        self.auditor = GuaranteeAuditor()
        self.live_pipeline: LivePipeline | None = None
        self.alert_engine: AlertEngine | None = None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    @property
    def origin(self) -> int:
        return self._origin

    @property
    def database(self) -> P2PDatabase:
        return self._database

    def query_ids(self) -> list[str]:
        return sorted(self._runtimes)

    def runtime(self, query_id: str) -> QueryRuntime:
        try:
            return self._runtimes[query_id]
        except KeyError:
            raise QueryError(
                f"no query registered under id {query_id!r}"
            ) from None

    def add_query(
        self,
        continuous_query: ContinuousQuery,
        config: EngineConfig | None = None,
        query_id: str | None = None,
        operator: SampleSource | None = None,
    ) -> str:
        """Register a continuous query; returns its query id.

        The query's evaluator draws through a pool lease keyed by the
        query id, unless ``operator`` injects an explicit substrate (the
        single-query facade uses this to honor its historical ``operator=``
        argument; such queries bypass the pool entirely).
        """
        database = self._database
        database.schema.validate_expression(continuous_query.query.expression)
        if continuous_query.query.predicate is not None:
            database.schema.validate_predicate(continuous_query.query.predicate)
        if query_id is None:
            query_id = f"q{self._next_auto_id}"
        if query_id in self._runtimes:
            raise QueryError(f"duplicate query id {query_id!r}")
        if "," in query_id:
            raise QueryError(
                f"query id {query_id!r} may not contain ',' (reserved for "
                f"trace attribution lists)"
            )
        self._next_auto_id += 1
        resolved = config if config is not None else EngineConfig()
        source = operator if operator is not None else self.pool.lease(query_id)

        population_provider = None
        if not resolved.oracle_population:
            from repro.sampling.size_estimation import estimate_relation_size

            def population_provider() -> float:
                return estimate_relation_size(source, database, self._origin)

        evaluator: IndependentEvaluator | RepeatedEvaluator
        if resolved.evaluator == "independent":
            evaluator = IndependentEvaluator(
                database,
                source,
                self._origin,
                continuous_query.query,
                population_size_provider=population_provider,
                config=resolved.evaluator_config,
            )
        else:
            evaluator = RepeatedEvaluator(
                database,
                source,
                self._origin,
                continuous_query.query,
                self._rng,
                population_size_provider=population_provider,
                config=resolved.evaluator_config,
            )

        scheduler: SnapshotScheduler
        if resolved.scheduler == "all":
            scheduler = ContinuousScheduler(period=resolved.period)
        else:
            scheduler = ExtrapolationScheduler(
                delta=continuous_query.precision.delta,
                n_points=resolved.pred_points,
                period=resolved.period,
                max_horizon=resolved.max_horizon,
                safety_factor=resolved.safety_factor,
            )
        runtime = QueryRuntime(
            query_id=query_id,
            continuous_query=continuous_query,
            config=resolved,
            evaluator=evaluator,
            scheduler=scheduler,
            source=source,
        )
        self.tracer.add_sink(_QueryScopedSink(query_id, runtime.metrics))
        self.auditor.register(
            query_id,
            continuous_query.precision.epsilon,
            continuous_query.precision.confidence,
        )
        # recorded so a replayed trace can rebuild the auditor (and hence
        # the audit_* burn-rate signals) without this session
        promises = self.tracer.meta.setdefault(META_PROMISES, {})
        promises[query_id] = {
            "epsilon": continuous_query.precision.epsilon,
            "confidence": continuous_query.precision.confidence,
        }
        self._runtimes[query_id] = runtime
        return query_id

    def add_query_set(self, query_set: QuerySet) -> list[str]:
        """Register every query of a :class:`QuerySet`, in order."""
        return [
            self.add_query(
                spec.continuous_query,
                config=spec.config,
                query_id=spec.query_id,
            )
            for spec in query_set
        ]

    def subscribe(
        self,
        query_id: str,
        callback: Callable[[UpdateRecord], None],
        delta: float | None = None,
    ) -> NotificationFilter:
        """Register a change-notification callback on one query.

        ``delta`` defaults to that query's own resolution parameter — the
        paper's intended user experience. The filter fires on the first
        result and then only when the estimate has moved by >= delta.
        """
        runtime = self.runtime(query_id)
        threshold = (
            delta
            if delta is not None
            else runtime.continuous_query.precision.delta
        )
        subscription = NotificationFilter(threshold, callback)
        runtime.subscriptions.append(subscription)
        return subscription

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self, time: int) -> dict[str, SnapshotEstimate]:
        """Advance every registered query to ``time``.

        Opens a fresh pool epoch (honoring the static-during-occasion
        assumption), coalesces the fresh-sample demands of co-due queries
        into one prefetched walk batch when at least two are due, then
        evaluates the due queries in sorted query-id order. Returns the
        snapshot estimates of the queries that executed this step.
        """
        self._sim_now = time
        self.pool.begin_epoch(time)
        fraction = self._refresh_scope(time)
        due = [
            self._runtimes[qid]
            for qid in sorted(self._runtimes)
            if self._runtimes[qid].due_at(time)
        ]
        if len(due) >= 2:
            self._prefetch_for(due)
        executed: dict[str, SnapshotEstimate] = {}
        for runtime in due:
            executed[runtime.query_id] = self._run_snapshot(
                runtime, time, fraction
            )
        return executed

    def _refresh_scope(self, time: int) -> float:
        """Re-derive the origin's reachable scope; returns its fraction.

        Only meaningful under a partition plan. On any scope *change*
        (cut, shrink, grow, or heal) all pooled samples are evicted and
        the operator's walk-length cache dropped: samples drawn under a
        different scope are drawn from a different stationary law and
        would bias every query that reused them. Without a plan this is
        free and returns 1.0.
        """
        if self._partitions is None:
            return 1.0
        if self._partitions.active:
            scope = frozenset(
                self._partitions.reachable(self._graph, self._origin)
            )
        else:
            scope = frozenset(self._graph.nodes())
        fraction = len(scope) / len(self._graph) if len(self._graph) else 1.0
        if self._scope is not None and scope != self._scope:
            reason = "cut" if fraction < 1.0 else "heal"
            self.pool.invalidate_scope(time, reason)
            self.pool.operator.invalidate_walk_length_cache()
        self._scope = scope
        return fraction

    def _prefetch_for(self, due: list[QueryRuntime]) -> None:
        """Draw the coalesced walk batch covering the due queries' demands.

        Only queries leasing from the pool participate (an injected
        operator bypasses the pool, so prefetching for it would strand
        samples). Demands are forecasts — a low forecast is topped up by
        the evaluator itself, a high one leaves pooled samples other
        queries may still consume within the epoch.
        """
        demands = [
            WalkDemand(
                runtime.query_id,
                runtime.evaluator.plan_demand(
                    runtime.continuous_query.precision.epsilon,
                    runtime.continuous_query.precision.confidence,
                ),
            )
            for runtime in due
            if runtime.source is not None
            and getattr(runtime.source, "pool", None) is self.pool
        ]
        plan = coalesce_demands(demands)
        if plan.n_walks == 0 or len(plan.demands) < 2:
            return
        self.batches_coalesced += 1
        self.pool.prefetch(
            self._database,
            plan.n_walks,
            self._origin,
            consumers=plan.consumers,
            allow_partial=True,
        )

    def _run_snapshot(
        self, runtime: QueryRuntime, time: int, fraction: float = 1.0
    ) -> SnapshotEstimate:
        """Execute one query's snapshot at ``time`` (the engine core)."""
        precision = runtime.continuous_query.precision
        span = self.tracer.span(
            SPAN_SNAPSHOT_QUERY,
            time=time,
            trigger=runtime.next_trigger,
            query=runtime.query_id,
        )
        with self.tracer.profile("snapshot_evaluate"):
            estimate = runtime.evaluator.evaluate(
                time, precision.epsilon, precision.confidence
            )
        if fraction < 1.0:
            estimate = self._rescope_estimate(runtime, estimate, fraction)
        if (
            runtime.config.forward_revision
            and isinstance(runtime.evaluator, RepeatedEvaluator)
            and runtime.evaluator.last_revision is not None
            and runtime.history
        ):
            revision = runtime.evaluator.last_revision
            previous_time = runtime.history[-1][0]
            scale = (
                estimate.aggregate / estimate.mean
                if estimate.mean not in (0.0,)
                else 1.0
            )
            runtime.result.amend(previous_time, revision.revised * scale)
        record = UpdateRecord(
            time=time,
            estimate=estimate.aggregate,
            n_samples=estimate.n_total,
            n_fresh=estimate.n_fresh,
        )
        runtime.result.update(record)
        for subscription in runtime.subscriptions:
            subscription.offer(record)
        runtime.history.append((time, estimate.aggregate))
        # counters (snapshot_queries, samples_*, degraded_estimates) are
        # derived from this span by the RunMetricsSink — session-wide on
        # the session metrics, query-scoped on the runtime metrics.
        self.auditor.observe(runtime.query_id, time, estimate)
        runtime.audit_verdict = self.auditor.verdict(runtime.query_id)
        if estimate.reachable_fraction < 1.0:
            # only set on actually-partitioned snapshots so partition-free
            # traces stay byte-identical to the pre-partition format
            span.set(reachable_fraction=estimate.reachable_fraction)
        if estimate.achieved_epsilon is not None:
            # likewise: the honest re-statements exist only on degraded
            # estimates, so clean traces keep the historical byte layout
            span.set(achieved_epsilon=estimate.achieved_epsilon)
        if estimate.achieved_confidence is not None:
            span.set(achieved_confidence=estimate.achieved_confidence)
        self.tracer.end(
            span,
            time=time,
            aggregate=estimate.aggregate,
            n_total=estimate.n_total,
            n_fresh=estimate.n_fresh,
            n_retained=estimate.n_retained,
            degraded=estimate.degraded,
        )
        runtime.metrics.series("estimate").record(time, estimate.aggregate)
        runtime.metrics.series("samples_per_query").record(
            time, estimate.n_total
        )
        runtime.next_due = runtime.scheduler.next_time(runtime.history, time)
        runtime.next_trigger = runtime.scheduler.last_decision
        return estimate

    def _rescope_estimate(
        self,
        runtime: QueryRuntime,
        estimate: SnapshotEstimate,
        fraction: float,
    ) -> SnapshotEstimate:
        """Restate an estimate over the reachable sub-population.

        During a partition the walk mixes over the origin's reachable
        region only, so the mean estimates the *reachable* population's
        mean. Scaling it by the full-relation tuple count would silently
        fabricate coverage of nodes no message can reach; instead the
        aggregate, population size, and Eq. 5 re-statements
        (``achieved_epsilon`` / ``achieved_confidence``) are re-derived
        against the reachable tuple count and the estimate is flagged
        degraded with ``reachable_fraction`` recorded.
        """
        scope = self._scope if self._scope is not None else frozenset()
        sizes = self._database.content_sizes()
        reachable_population = sum(
            sizes.get(node, 0) for node in scope if node in sizes
        )
        precision = runtime.continuous_query.precision
        op = runtime.continuous_query.query.op
        new_scale = scale_factor(op, reachable_population)
        aggregate = estimate.mean * new_scale
        ach_eps = achieved_epsilon(estimate.variance, precision.confidence)
        ach_eps *= new_scale
        epsilon_mean = mean_error_budget(
            op, precision.epsilon, reachable_population
        )
        ach_conf = (
            achieved_confidence(epsilon_mean, estimate.variance)
            if epsilon_mean != float("inf")
            else None
        )
        return replace(
            estimate,
            aggregate=aggregate,
            population_size=reachable_population,
            degraded=True,
            achieved_epsilon=ach_eps,
            achieved_confidence=ach_conf,
            reachable_fraction=fraction,
        )

    # ------------------------------------------------------------------
    # live observability
    # ------------------------------------------------------------------

    def attach_live(
        self,
        rules: list[AlertRule] | tuple[AlertRule, ...] = (),
        window_config: WindowConfig | None = None,
    ) -> tuple[LivePipeline, AlertEngine]:
        """Attach the live analytics pipeline and alert engine.

        The pipeline becomes one more sink on the session's tracer (no
        JSONL round-trip); the guarantee auditor contributes its
        ``audit_burn_rate`` / ``audit_violation_fraction`` signals to
        every window, and the engine emits alert transitions back
        through the same tracer — so they land in the recorded trace and
        in the :class:`~repro.obs.tracer.RunMetricsSink` counters. Call
        :meth:`finish_live` at end of run to close the final window.
        """
        if self.live_pipeline is not None:
            raise QueryError("live pipeline already attached")
        pipeline = LivePipeline(window_config)
        pipeline.add_contributor(self.auditor.signals)
        engine = AlertEngine(pipeline, list(rules), tracer=self.tracer)
        self.tracer.add_sink(pipeline)
        self.live_pipeline = pipeline
        self.alert_engine = engine
        return pipeline, engine

    def finish_live(self, time: int) -> None:
        """Close the live pipeline's final window at the run's last tick.

        Also stamps the finish time into the tracer's metadata
        (:data:`~repro.obs.live.META_FINISHED_AT`) so a replayed trace
        closes its final window — and fires any resulting transitions —
        at the same simulated time.
        """
        if self.live_pipeline is None:
            return
        self.tracer.meta[META_FINISHED_AT] = time
        self.live_pipeline.finish(time)

    def next_due(self) -> int | None:
        """Earliest upcoming snapshot time across still-active queries."""
        upcoming = [
            runtime.next_due
            for runtime in self._runtimes.values()
            if not runtime.finished_after(runtime.next_due)
        ]
        return min(upcoming) if upcoming else None

    def attach(self, simulation: SimulationEngine) -> None:
        """Schedule the session's stepping on a simulation engine.

        Steps sparsely: one callback at the earliest due time across
        queries, rescheduled after each step. Runs at
        :data:`~repro.sim.engine.PRIORITY_QUERY` (after data updates and
        churn), honoring the static-during-occasion assumption.
        """

        def run(time: int) -> None:
            self.step(time)
            upcoming = self.next_due()
            if upcoming is not None:
                simulation.schedule_at(upcoming, run, PRIORITY_QUERY)

        starts = [
            max(runtime.continuous_query.start_time, simulation.now)
            for runtime in self._runtimes.values()
        ]
        if starts:
            simulation.schedule_at(min(starts), run, PRIORITY_QUERY)
