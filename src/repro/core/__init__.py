"""Digest's top tier: sample-based continuous query evaluation (Section IV).

* :mod:`repro.core.query` — query model and fixed-precision semantics
  ``(delta, epsilon, p)`` of Section II.
* :mod:`repro.core.estimators` — CLT machinery shared by the evaluators.
* :mod:`repro.core.independent` — classical independent sampling (IV-B1).
* :mod:`repro.core.repeated` — repeated sampling with regression estimation
  and optimal partial replacement (IV-B2).
* :mod:`repro.core.extrapolation` — Taylor-polynomial prediction of the
  next update time (IV-A).
* :mod:`repro.core.scheduler` — continual-querying schedulers: ``ALL`` and
  ``PRED-k``.
* :mod:`repro.core.result` — the running result ``X_hat[t]`` with hold
  semantics.
* :mod:`repro.core.session` — :class:`~repro.core.session.DigestSession`,
  many queries sharing one sampling substrate (pool + coalesced walks).
* :mod:`repro.core.engine` — :class:`~repro.core.engine.DigestEngine`, the
  two tiers composed into the full system (single-query facade over a
  session).
"""

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.estimators import (
    confidence_quantile,
    ratio_estimate,
    required_sample_size,
    sample_mean_and_variance,
)
from repro.core.extrapolation import TaylorExtrapolator
from repro.core.forward import RevisedEstimate, revise_previous
from repro.core.independent import IndependentEvaluator
from repro.core.node import DigestNode, SharedSampleSource
from repro.core.query import ContinuousQuery, Precision, Query, parse_query
from repro.core.repeated import RepeatedEvaluator, optimal_partition
from repro.core.result import NotificationFilter, RunningResult, UpdateRecord
from repro.core.scheduler import (
    ContinuousScheduler,
    ExtrapolationScheduler,
    WalkBatchPlan,
    WalkDemand,
    coalesce_demands,
)
from repro.core.session import DigestSession, QueryRuntime, QuerySet, QuerySpec
from repro.core.threshold import ThresholdEvent, ThresholdMonitor, ThresholdState

__all__ = [
    "ContinuousQuery",
    "ContinuousScheduler",
    "DigestEngine",
    "DigestNode",
    "DigestSession",
    "EngineConfig",
    "ExtrapolationScheduler",
    "IndependentEvaluator",
    "NotificationFilter",
    "Precision",
    "Query",
    "QueryRuntime",
    "QuerySet",
    "QuerySpec",
    "RepeatedEvaluator",
    "RevisedEstimate",
    "RunningResult",
    "SharedSampleSource",
    "TaylorExtrapolator",
    "ThresholdEvent",
    "ThresholdMonitor",
    "ThresholdState",
    "UpdateRecord",
    "WalkBatchPlan",
    "WalkDemand",
    "coalesce_demands",
    "confidence_quantile",
    "optimal_partition",
    "parse_query",
    "ratio_estimate",
    "required_sample_size",
    "revise_previous",
    "sample_mean_and_variance",
]
