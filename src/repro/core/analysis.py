"""Analytical properties of the repeated-sampling recursion.

The paper analyzes the 2nd occasion in closed form (Eq. 8-11) and defers
the k-th occasion to an extended version. This module completes that
analysis for our implemented recursion (see :mod:`repro.core.repeated`):

At occasion ``k`` with budget ``n`` and matched portion ``g``::

    var_k(g) = 1 / ( (n-g)/sigma^2 + g / (sigma^2 (1-rho^2) + g rho^2 v_{k-1}) )

Iterating with the per-occasion optimal ``g`` drives ``v_k`` to a fixed
point ``v*`` that is *strictly below* the second-occasion minimum
(Eq. 10): regressing against an already-sharpened previous estimate is
better than regressing against a fresh one. This is why the measured
improvement factors (paper: 1.63 at rho = 0.89) exceed the one-step bound
``2 / (1 + sqrt(1 - rho^2))`` (= 1.37 at rho = 0.89): the recursion
compounds.

Functions here compute the fixed point and the steady-state improvement
factor; the tests validate them against long simulated runs of the
evaluator, and the docs use them to reconcile measured vs. one-step
numbers.
"""

from __future__ import annotations

import math

from repro.core.repeated import _best_partition
from repro.errors import QueryError


def occasion_variance(
    sigma2: float, n: int, rho: float, previous_variance: float
) -> float:
    """Best achievable variance at one occasion given the previous one."""
    _, variance = _best_partition(
        sigma2, n, rho, previous_variance, retained_available=n
    )
    return variance


def steady_state_variance(
    sigma2: float,
    n: int,
    rho: float,
    tolerance: float = 1e-12,
    max_iterations: int = 10_000,
) -> float:
    """Fixed point ``v*`` of the optimally-partitioned recursion.

    Starts from the independent-sampling variance ``sigma^2 / n`` (the
    bootstrap occasion) and iterates; the map is monotone and bounded
    below, so it converges. Raises only on invalid inputs.
    """
    if sigma2 < 0:
        raise QueryError(f"sigma^2 must be >= 0, got {sigma2}")
    if n < 1:
        raise QueryError(f"n must be >= 1, got {n}")
    if not -1.0 <= rho <= 1.0:
        raise QueryError(f"rho must be in [-1, 1], got {rho}")
    if sigma2 == 0.0:
        return 0.0
    variance = sigma2 / n
    for _ in range(max_iterations):
        following = occasion_variance(sigma2, n, rho, variance)
        if abs(following - variance) <= tolerance * max(variance, 1e-300):
            return following
        variance = following
    return variance


def steady_state_improvement(rho: float, n: int = 1000) -> float:
    """Steady-state variance ratio ``(sigma^2/n) / v*``.

    The per-occasion *sample-count* improvement of repeated over
    independent sampling at a fixed variance target equals this ratio
    (sample counts scale inversely with achievable variance). Compare
    with the paper's measured I = 1.63 at rho ~= 0.89, which sits between
    the one-step factor 1.37 and this steady-state bound.
    """
    v_star = steady_state_variance(1.0, n, rho)
    if v_star <= 0:
        return float("inf")
    return (1.0 / n) / v_star


def one_step_improvement(rho: float) -> float:
    """Eq. 11's second-occasion improvement ``2 / (1 + sqrt(1 - rho^2))``."""
    if not -1.0 <= rho <= 1.0:
        raise QueryError(f"rho must be in [-1, 1], got {rho}")
    return 2.0 / (1.0 + math.sqrt(max(0.0, 1.0 - rho * rho)))
