"""A Digest peer running multiple continuous queries.

The paper's architecture (Section III, Figure 2) has each node operate its
own Digest instance answering "the continuous queries received from the
local user" — plural. :class:`DigestNode` is that per-peer instance:

* one shared :class:`~repro.sampling.pool.SamplePool` (owning the
  :class:`~repro.sampling.operator.SamplingOperator`) serves all
  registered queries, so the continued-walk pool and the spectral
  walk-length cache amortize across them;
* with ``share_samples=True``, queries evaluated at the same time step
  additionally *reuse tuple samples* through the pool's per-consumer
  cursors: samples are i.i.d. uniform tuples, so a sample drawn for one
  query is a perfectly valid sample for another query at the same
  occasion — and the cursor guarantees no query is ever served the same
  draw twice, keeping each query's own sample i.i.d. Each query's
  ``(epsilon, p)`` guarantee holds marginally; estimates of co-scheduled
  queries become correlated with each other, which is harmless for the
  per-query semantics and is the price of paying for each sample once
  instead of once per query.

:class:`SharedSampleSource` is the historical per-occasion cache the node
used before the pool existed; it is kept as a lightweight standalone
adapter (the pool supersedes it for node wiring).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.query import ContinuousQuery
from repro.core.result import RunningResult
from repro.core.snapshot import SnapshotEstimate
from repro.db.relation import P2PDatabase
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.sampling.operator import (
    SamplerConfig,
    SamplingOperator,
    TupleSample,
)
from repro.sampling.pool import SamplePool
from repro.sampling.weights import WeightFunction
from repro.sim.engine import PRIORITY_QUERY, SimulationEngine


class SharedSampleSource:
    """Operator facade adding per-occasion tuple-sample reuse.

    Duck-typed to the slice of :class:`SamplingOperator` the evaluators
    use (``sample_tuples``). Samples drawn during one occasion are cached;
    later requests in the same occasion are served from the cache first
    and only the shortfall is drawn fresh. ``begin_occasion`` must be
    called when the time step advances (the node does this).
    """

    def __init__(self, operator: SamplingOperator) -> None:
        self._operator = operator
        self._occasion: int | None = None
        self._cache: list[TupleSample] = []
        self.samples_served_from_cache = 0

    def begin_occasion(self, time: int) -> None:
        if time != self._occasion:
            self._occasion = time
            self._cache = []

    def sample_tuples(
        self,
        database: P2PDatabase,
        n: int,
        origin: int,
        max_retries: int = 8,
        allow_partial: bool = False,
    ) -> list[TupleSample]:
        served = [s for s in self._cache[:n] if s.tuple_id in database]
        shortfall = n - len(served)
        self.samples_served_from_cache += len(served)
        if shortfall > 0:
            fresh = self._operator.sample_tuples(
                database, shortfall, origin, max_retries, allow_partial
            )
            self._cache.extend(fresh)
            served = served + fresh
        return served

    def sample_nodes(self, weight: WeightFunction, n: int, origin: int) -> list[int]:
        """Pass-through (node sampling has no per-occasion reuse semantics)."""
        return self._operator.sample_nodes(weight, n, origin)


@dataclass
class _RegisteredQuery:
    engine: DigestEngine
    continuous_query: ContinuousQuery


class DigestNode:
    """One peer's Digest instance, multiplexing continuous queries."""

    def __init__(
        self,
        graph: OverlayGraph,
        database: P2PDatabase,
        origin: int,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        sampler_config: SamplerConfig | None = None,
        share_samples: bool = True,
    ) -> None:
        if origin not in graph:
            raise QueryError(f"node {origin} is not in the overlay")
        self._graph = graph
        self._database = database
        self._origin = origin
        self._rng = rng
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.pool = SamplePool(graph, rng, self.ledger, sampler_config)
        self._share_samples = share_samples
        self._queries: dict[int, _RegisteredQuery] = {}
        self._next_id = 0

    @property
    def origin(self) -> int:
        return self._origin

    @property
    def operator(self) -> SamplingOperator:
        return self.pool.operator

    def query_ids(self) -> list[int]:
        return sorted(self._queries)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(
        self,
        continuous_query: ContinuousQuery,
        config: EngineConfig | None = None,
    ) -> int:
        """Register a continuous query; returns its query id."""
        query_id = self._next_id
        operator = (
            self.pool.lease(f"q{query_id}")
            if self._share_samples
            else self.pool.operator
        )
        engine = DigestEngine(
            self._graph,
            self._database,
            continuous_query,
            self._origin,
            self._rng,
            ledger=self.ledger,
            config=config,
            operator=operator,
        )
        self._next_id += 1
        self._queries[query_id] = _RegisteredQuery(engine, continuous_query)
        return query_id

    def deregister(self, query_id: int) -> None:
        if query_id not in self._queries:
            raise QueryError(f"no query registered under id {query_id}")
        del self._queries[query_id]

    def engine(self, query_id: int) -> DigestEngine:
        try:
            return self._queries[query_id].engine
        except KeyError:
            raise QueryError(f"no query registered under id {query_id}") from None

    def result(self, query_id: int) -> RunningResult:
        return self.engine(query_id).result

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self, time: int) -> dict[int, SnapshotEstimate]:
        """Advance every registered query to ``time``.

        Returns the snapshot estimates of the queries that executed a
        snapshot this step (queries whose scheduler skipped the step are
        absent).
        """
        self.pool.begin_epoch(time)
        executed: dict[int, SnapshotEstimate] = {}
        for query_id in sorted(self._queries):
            estimate = self._queries[query_id].engine.step(time)
            if estimate is not None:
                executed[query_id] = estimate
        return executed

    def attach(self, simulation: SimulationEngine, until: int) -> None:
        """Schedule this node's stepping on a simulation engine."""
        simulation.schedule_every(
            1, lambda t: self.step(t), PRIORITY_QUERY, until=until
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def total_samples(self) -> int:
        return sum(q.engine.metrics.samples_total for q in self._queries.values())

    def total_fresh_samples(self) -> int:
        return sum(q.engine.metrics.samples_fresh for q in self._queries.values())

    def samples_saved_by_sharing(self) -> int:
        """Samples served from the shared pool instead of drawn fresh."""
        return self.pool.pool_hits
