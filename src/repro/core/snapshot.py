"""Shared snapshot-evaluation result type.

Both evaluators (independent and repeated sampling) produce a
:class:`SnapshotEstimate`: the mean estimate, the scaled aggregate
estimate, the estimator's variance (of the *mean* estimator), and the
sample accounting the experiments aggregate (total / fresh / retained).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.estimators import confidence_quantile


@dataclass(frozen=True)
class SnapshotEstimate:
    """Result of one snapshot-query evaluation.

    ``variance`` is the estimated variance of the mean estimator;
    ``aggregate`` is the mean scaled to the query's aggregate (times ``N``
    for SUM/COUNT). ``n_fresh`` counts samples drawn through the sampling
    operator this occasion; ``n_retained`` counts re-evaluated samples
    carried over from the previous occasion.

    Degradation contract (failure model): when the overlay lost samples
    and the evaluator could not reach the promised ``(epsilon, p)``, the
    estimate is still returned but flagged ``degraded=True`` with
    ``achieved_epsilon`` (half-width actually attained at the promised
    confidence) and ``achieved_confidence`` (confidence actually attained
    at the promised epsilon) filled in — the honest re-statement of Eq. 5
    for the samples that made it back. Both are ``None`` on non-degraded
    estimates.

    ``reachable_fraction`` extends the contract to *correlated* failures
    (overlay partitions): it is the fraction of live nodes the querying
    node could reach when the samples were drawn. While a partition is
    open it is ``< 1.0``, the estimate is flagged degraded, and
    ``population_size`` / ``aggregate`` are re-scoped to the reachable
    sub-population — the estimate answers the query *over the population
    that was actually sampleable*, stated honestly, instead of silently
    pretending to cover the whole relation.
    """

    time: int
    mean: float
    aggregate: float
    variance: float
    n_total: int
    n_fresh: int
    n_retained: int
    population_size: int
    degraded: bool = False
    achieved_epsilon: float | None = None
    achieved_confidence: float | None = None
    reachable_fraction: float = 1.0

    def half_width(self, confidence: float) -> float:
        """Achieved confidence-interval half width for the *mean* estimate."""
        return confidence_quantile(confidence) * math.sqrt(max(0.0, self.variance))
