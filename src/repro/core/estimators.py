"""CLT-based estimation machinery shared by the snapshot evaluators.

Independent sampling estimates the population mean by the sample mean;
the central limit theorem gives (Eq. 5)::

    Pr(|Y_hat - Y_bar| <= eps) ~= 2 * (Phi(eps * sqrt(n) / sigma) - 1/2)

Setting the right-hand side to the confidence ``p`` and solving yields the
required sample size (Eq. 6)::

    n = (sigma * z_p / eps)^2,   z_p = Phi^-1((p + 1) / 2)

(The paper prints ``Phi^-1(p/2)``, a typo: ``(p+1)/2`` is the two-sided
quantile that actually solves Eq. 5.)

The same machinery expresses a *variance target*: an estimator with
variance ``v`` satisfies the ``(eps, p)`` requirement when
``v <= (eps / z_p)^2``, which is how the repeated-sampling evaluator sizes
its sample-set (its estimator variance is not ``sigma^2/n``).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.stats import norm

from repro.errors import QueryError


def confidence_quantile(confidence: float) -> float:
    """Two-sided standard-normal quantile ``z_p = Phi^-1((p+1)/2)``.

    >>> round(confidence_quantile(0.95), 2)
    1.96
    """
    if not 0.0 < confidence < 1.0:
        raise QueryError(f"confidence must be in (0, 1), got {confidence}")
    return float(norm.ppf((confidence + 1.0) / 2.0))


def variance_target(epsilon: float, confidence: float) -> float:
    """Largest estimator variance that meets the ``(epsilon, p)`` requirement."""
    if epsilon <= 0:
        raise QueryError(f"epsilon must be > 0 for a variance target, got {epsilon}")
    z = confidence_quantile(confidence)
    return (epsilon / z) ** 2


def required_sample_size(
    sigma: float,
    epsilon: float,
    confidence: float,
    minimum: int = 2,
    maximum: int = 10_000_000,
) -> int:
    """Eq. 6: ``n = (sigma * z_p / epsilon)^2``, rounded up and clamped.

    ``minimum`` keeps the variance estimate well-defined (n >= 2);
    ``maximum`` guards against pathological inputs (sigma huge, eps tiny).
    """
    if sigma < 0:
        raise QueryError(f"sigma must be >= 0, got {sigma}")
    if epsilon <= 0:
        raise QueryError(f"epsilon must be > 0, got {epsilon}")
    if sigma == 0.0:
        return minimum
    z = confidence_quantile(confidence)
    n = int(math.ceil((sigma * z / epsilon) ** 2))
    if n > maximum:
        raise QueryError(
            f"required sample size {n} exceeds the configured maximum {maximum}; "
            f"precision (epsilon={epsilon}, p={confidence}) is infeasible "
            f"for population sigma~{sigma}"
        )
    return max(minimum, n)


def sample_mean_and_variance(values: np.ndarray) -> tuple[float, float]:
    """Sample mean and *population-style* variance ``(1/n) sum (y - mean)^2``.

    The paper's estimator variance expressions use the ``1/n`` convention
    (its ``sigma_hat^2``); for the sample sizes involved the distinction
    from ``1/(n-1)`` is immaterial, but we follow the paper for exact
    agreement with Table 1 in tests.
    """
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise QueryError("cannot estimate from an empty sample")
    mean = float(array.mean())
    variance = float(np.mean((array - mean) ** 2))
    return mean, variance


def ratio_estimate(
    values: np.ndarray, indicators: np.ndarray
) -> tuple[float, float]:
    """Ratio estimator ``R = E[y] / E[i]`` with its delta-method variance.

    Used for ``AVG(expr) WHERE predicate``: ``y = expr * indicator`` and
    ``i`` the qualification indicator, so ``R`` is the subpopulation mean.
    The linearized variance of the estimator is::

        var(R_hat) ~= (1 / (n * i_bar^2)) * mean((y - R_hat * i)^2)

    which reduces to ``sigma^2 / n`` when every tuple qualifies. Raises
    when no sampled tuple qualifies (the ratio is then undefined).
    """
    values = np.asarray(values, dtype=float)
    indicators = np.asarray(indicators, dtype=float)
    if values.size == 0 or values.shape != indicators.shape:
        raise QueryError("ratio estimation needs matching non-empty samples")
    indicator_mean = float(indicators.mean())
    if indicator_mean <= 0.0:
        raise QueryError(
            "no sampled tuple satisfies the predicate; cannot estimate AVG "
            "(selectivity may be too low for sampling)"
        )
    ratio = float(values.mean()) / indicator_mean
    residuals = values - ratio * indicators
    variance = float(np.mean(residuals**2)) / (
        values.size * indicator_mean**2
    )
    return ratio, variance


def achieved_epsilon(variance: float, confidence: float) -> float:
    """Half-width of the two-sided confidence interval for a given variance."""
    if variance < 0:
        raise QueryError(f"variance must be >= 0, got {variance}")
    return confidence_quantile(confidence) * math.sqrt(variance)


def achieved_confidence(epsilon: float, variance: float) -> float:
    """Eq. 5 inverted for ``p``: the confidence actually achieved.

    When fewer samples come back than Eq. 6 asked for, the promised
    ``(epsilon, p)`` no longer holds; the honest statement at the same
    ``epsilon`` is ``p = 2 Phi(epsilon / sqrt(var)) - 1`` with ``var`` the
    achieved estimator variance. Returns 1.0 for a zero-variance
    estimator.
    """
    if epsilon <= 0:
        raise QueryError(f"epsilon must be > 0, got {epsilon}")
    if variance < 0:
        raise QueryError(f"variance must be >= 0, got {variance}")
    if variance == 0.0:
        return 1.0
    return float(2.0 * norm.cdf(epsilon / math.sqrt(variance)) - 1.0)
