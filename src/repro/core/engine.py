"""The Digest engine: both tiers composed (Section III).

:class:`DigestEngine` runs one fixed-precision approximate continuous
aggregate query at one (querying) node: the continual-querying scheduler
decides *when* to run snapshot queries, the snapshot evaluator decides *how
many* samples each needs, and the sampling operator supplies the samples.
Every algorithm combination of the paper's evaluation is a configuration:

=============  ======================  =========================
Paper name     scheduler               evaluator
=============  ======================  =========================
ALL + INDEP    ``"all"``               ``"independent"``
ALL + RPT      ``"all"``               ``"repeated"``
PRED-k + INDEP ``"pred"`` (k points)   ``"independent"``
PRED-k + RPT   ``"pred"`` (k points)   ``"repeated"``  (= Digest)
=============  ======================  =========================

Drive the engine either step-by-step (``engine.step(t)`` from your own
loop) or by attaching it to a :class:`~repro.sim.engine.SimulationEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.independent import EvaluatorConfig, IndependentEvaluator
from repro.core.query import ContinuousQuery
from repro.core.repeated import RepeatedEvaluator
from repro.core.result import NotificationFilter, RunningResult, UpdateRecord
from repro.core.scheduler import ContinuousScheduler, ExtrapolationScheduler
from repro.core.snapshot import SnapshotEstimate
from repro.db.relation import P2PDatabase
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.obs.tracer import RunMetricsSink, SinkTracer
from repro.sampling.operator import SamplerConfig, SamplingOperator
from repro.sim.engine import PRIORITY_QUERY, SimulationEngine
from repro.sim.metrics import RunMetrics


@dataclass(frozen=True)
class EngineConfig:
    """Algorithm selection and tuning for one engine instance.

    ``scheduler`` is ``"all"`` or ``"pred"``; ``pred_points`` is the ``k``
    of PRED-k. ``evaluator`` is ``"independent"`` or ``"repeated"``.
    ``oracle_population=True`` uses the database's true tuple count to
    scale SUM/COUNT (the experiments' setting); ``False`` estimates it by
    capture-recapture sampling each occasion.

    ``forward_revision=True`` (repeated evaluator only) retrospectively
    amends each result update once the next occasion's data allows a
    forward-regression revision (the paper's Section VIII extension; see
    :mod:`repro.core.forward`).
    """

    scheduler: str = "pred"
    evaluator: str = "repeated"
    pred_points: int = 3
    period: int = 1
    max_horizon: int = 64
    safety_factor: float = 1.0
    oracle_population: bool = True
    forward_revision: bool = False
    evaluator_config: EvaluatorConfig | None = None

    def __post_init__(self) -> None:
        if self.scheduler not in ("all", "pred"):
            raise QueryError(
                f"scheduler must be 'all' or 'pred', got {self.scheduler!r}"
            )
        if self.evaluator not in ("independent", "repeated"):
            raise QueryError(
                f"evaluator must be 'independent' or 'repeated', "
                f"got {self.evaluator!r}"
            )


class DigestEngine:
    """One continuous query answered at one querying node."""

    def __init__(
        self,
        graph: OverlayGraph,
        database: P2PDatabase,
        continuous_query: ContinuousQuery,
        origin: int,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        sampler_config: SamplerConfig | None = None,
        config: EngineConfig | None = None,
        operator: SamplingOperator | None = None,
        tracer: SinkTracer | None = None,
    ) -> None:
        """``operator`` lets several engines share one sampling operator
        (continued-walk pool, spectral cache, per-occasion sample reuse) —
        see :class:`repro.core.node.DigestNode`. When given, ``ledger``
        should be the ledger that operator records on.

        ``tracer`` must be sink-capable (the engine's counters are
        *derived* from the span stream, not hand-booked): a
        :class:`~repro.obs.tracer.RunMetricsSink` feeding :attr:`metrics`
        is always attached, whether the tracer was passed in or the
        engine created its own."""
        if origin not in graph:
            raise QueryError(f"querying node {origin} is not in the overlay")
        database.schema.validate_expression(continuous_query.query.expression)
        if continuous_query.query.predicate is not None:
            database.schema.validate_predicate(continuous_query.query.predicate)
        self._graph = graph
        self._database = database
        self._cq = continuous_query
        self._origin = origin
        self._config = config if config is not None else EngineConfig()
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.metrics = RunMetrics()
        self.result = RunningResult()
        self.tracer = tracer if tracer is not None else SinkTracer()
        self.tracer.add_sink(RunMetricsSink(self.metrics))
        self._next_trigger = "bootstrap"
        if operator is not None:
            self.operator = operator
        else:
            self.operator = SamplingOperator(
                graph, rng, self.ledger, sampler_config, tracer=self.tracer
            )

        population_provider = None
        if not self._config.oracle_population:
            from repro.sampling.size_estimation import estimate_relation_size

            def population_provider() -> float:
                return estimate_relation_size(
                    self.operator, self._database, self._origin
                )

        if self._config.evaluator == "independent":
            self._evaluator = IndependentEvaluator(
                database,
                self.operator,
                origin,
                continuous_query.query,
                population_size_provider=population_provider,
                config=self._config.evaluator_config,
            )
        else:
            self._evaluator = RepeatedEvaluator(
                database,
                self.operator,
                origin,
                continuous_query.query,
                rng,
                population_size_provider=population_provider,
                config=self._config.evaluator_config,
            )

        precision = continuous_query.precision
        if self._config.scheduler == "all":
            self._scheduler = ContinuousScheduler(period=self._config.period)
        else:
            self._scheduler = ExtrapolationScheduler(
                delta=precision.delta,
                n_points=self._config.pred_points,
                period=self._config.period,
                max_horizon=self._config.max_horizon,
                safety_factor=self._config.safety_factor,
            )
        self._next_due = continuous_query.start_time
        self._history: list[tuple[int, float]] = []
        self._subscriptions: list[NotificationFilter] = []

    @property
    def config(self) -> EngineConfig:
        return self._config

    @property
    def continuous_query(self) -> ContinuousQuery:
        return self._cq

    @property
    def next_due(self) -> int:
        """Time of the next scheduled snapshot query."""
        return self._next_due

    def current_estimate(self, time: int) -> float:
        """The running result under hold semantics."""
        return self.result.value_at(time)

    def subscribe(
        self,
        callback: Callable[[UpdateRecord], None],
        delta: float | None = None,
    ) -> NotificationFilter:
        """Register a "notify me whenever it changes by delta" callback.

        ``delta`` defaults to the query's own resolution parameter — the
        paper's intended user experience. The filter fires on the first
        result and then only when the estimate has moved by >= delta.
        """
        threshold = delta if delta is not None else self._cq.precision.delta
        subscription = NotificationFilter(threshold, callback)
        self._subscriptions.append(subscription)
        return subscription

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self, time: int) -> SnapshotEstimate | None:
        """Advance to ``time``: run a snapshot query iff one is due.

        Returns the snapshot estimate when a query ran, else None. Steps
        may be sparse (callers need only call at due times, but calling on
        every step is equally correct).
        """
        if not self._cq.active_at(time) or time < self._next_due:
            return None
        precision = self._cq.precision
        span = self.tracer.span(
            "snapshot_query", time=time, trigger=self._next_trigger
        )
        with self.tracer.profile("snapshot_evaluate"):
            estimate = self._evaluator.evaluate(
                time, precision.epsilon, precision.confidence
            )
        if (
            self._config.forward_revision
            and isinstance(self._evaluator, RepeatedEvaluator)
            and self._evaluator.last_revision is not None
            and self._history
        ):
            revision = self._evaluator.last_revision
            previous_time = self._history[-1][0]
            scale = (
                estimate.aggregate / estimate.mean
                if estimate.mean not in (0.0,)
                else 1.0
            )
            self.result.amend(previous_time, revision.revised * scale)
        record = UpdateRecord(
            time=time,
            estimate=estimate.aggregate,
            n_samples=estimate.n_total,
            n_fresh=estimate.n_fresh,
        )
        self.result.update(record)
        for subscription in self._subscriptions:
            subscription.offer(record)
        self._history.append((time, estimate.aggregate))
        # counters (snapshot_queries, samples_*, degraded_estimates) are
        # derived from this span by the RunMetricsSink — the same code
        # path a replayed trace goes through, so they cannot drift apart.
        self.tracer.end(
            span,
            time=time,
            aggregate=estimate.aggregate,
            n_total=estimate.n_total,
            n_fresh=estimate.n_fresh,
            n_retained=estimate.n_retained,
            degraded=estimate.degraded,
        )
        self.metrics.series("estimate").record(time, estimate.aggregate)
        self.metrics.series("samples_per_query").record(time, estimate.n_total)
        self._next_due = self._scheduler.next_time(self._history, time)
        self._next_trigger = self._scheduler.last_decision
        return estimate

    def attach(self, simulation: SimulationEngine) -> None:
        """Schedule this engine's snapshot queries on a simulation engine.

        The engine runs at :data:`~repro.sim.engine.PRIORITY_QUERY`, i.e.
        after the step's data updates and churn, honoring the paper's
        static-during-occasion assumption.
        """

        def run(time: int) -> None:
            self.step(time)
            end = self._cq.end_time
            if end is None or self._next_due <= end:
                simulation.schedule_at(self._next_due, run, PRIORITY_QUERY)

        start = max(self._cq.start_time, simulation.now)
        simulation.schedule_at(start, run, PRIORITY_QUERY)
