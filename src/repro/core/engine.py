"""The Digest engine: both tiers composed (Section III).

:class:`DigestEngine` runs one fixed-precision approximate continuous
aggregate query at one (querying) node: the continual-querying scheduler
decides *when* to run snapshot queries, the snapshot evaluator decides *how
many* samples each needs, and the sampling operator supplies the samples.
Every algorithm combination of the paper's evaluation is a configuration:

=============  ======================  =========================
Paper name     scheduler               evaluator
=============  ======================  =========================
ALL + INDEP    ``"all"``               ``"independent"``
ALL + RPT      ``"all"``               ``"repeated"``
PRED-k + INDEP ``"pred"`` (k points)   ``"independent"``
PRED-k + RPT   ``"pred"`` (k points)   ``"repeated"``  (= Digest)
=============  ======================  =========================

Drive the engine either step-by-step (``engine.step(t)`` from your own
loop) or by attaching it to a :class:`~repro.sim.engine.SimulationEngine`.

Since the multi-query refactor this class is a facade over a single-query
:class:`~repro.core.session.DigestSession` — same public surface, same
seed-for-seed results (a session with one query never coalesces walk
batches, and a cold pool passes requests straight through to the
operator). Register several queries on one session directly when you want
them to share walks; :class:`~repro.core.session.EngineConfig` also lives
there and is re-exported here for compatibility.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.query import ContinuousQuery
from repro.core.result import NotificationFilter, RunningResult, UpdateRecord
from repro.core.session import DigestSession, EngineConfig
from repro.core.snapshot import SnapshotEstimate
from repro.db.relation import P2PDatabase
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.obs.tracer import SinkTracer
from repro.sampling.operator import SamplerConfig, SampleSource
from repro.sim.engine import PRIORITY_QUERY, SimulationEngine
from repro.sim.metrics import RunMetrics

__all__ = ["DigestEngine", "EngineConfig"]


class DigestEngine:
    """One continuous query answered at one querying node."""

    def __init__(
        self,
        graph: OverlayGraph,
        database: P2PDatabase,
        continuous_query: ContinuousQuery,
        origin: int,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        sampler_config: SamplerConfig | None = None,
        config: EngineConfig | None = None,
        operator: SampleSource | None = None,
        tracer: SinkTracer | None = None,
    ) -> None:
        """``operator`` lets several engines share one sampling substrate
        (continued-walk pool, spectral cache, per-occasion sample reuse) —
        see :class:`repro.core.node.DigestNode`. When given, ``ledger``
        should be the ledger that operator records on.

        ``tracer`` must be sink-capable (the engine's counters are
        *derived* from the span stream, not hand-booked): a
        :class:`~repro.obs.tracer.RunMetricsSink` feeding :attr:`metrics`
        is always attached, whether the tracer was passed in or the
        engine created its own."""
        self._session = DigestSession(
            graph,
            database,
            origin,
            rng,
            ledger=ledger,
            sampler_config=sampler_config,
            tracer=tracer,
        )
        self._injected_operator = operator
        self._qid = self._session.add_query(
            continuous_query, config=config, operator=operator
        )
        self._runtime = self._session.runtime(self._qid)
        self.ledger = self._session.ledger
        self.tracer = self._session.tracer

    @property
    def metrics(self) -> RunMetrics:
        return self._session.metrics

    @property
    def result(self) -> RunningResult:
        return self._runtime.result

    @property
    def operator(self) -> SampleSource:
        """The sampling substrate the query draws from (injected or owned)."""
        if self._injected_operator is not None:
            return self._injected_operator
        return self._session.pool.operator

    @property
    def session(self) -> DigestSession:
        """The underlying single-query session (for pool/trace access)."""
        return self._session

    @property
    def config(self) -> EngineConfig:
        return self._runtime.config

    @property
    def continuous_query(self) -> ContinuousQuery:
        return self._runtime.continuous_query

    @property
    def next_due(self) -> int:
        """Time of the next scheduled snapshot query."""
        return self._runtime.next_due

    def current_estimate(self, time: int) -> float:
        """The running result under hold semantics."""
        return self._runtime.result.value_at(time)

    def subscribe(
        self,
        callback: Callable[[UpdateRecord], None],
        delta: float | None = None,
    ) -> NotificationFilter:
        """Register a "notify me whenever it changes by delta" callback.

        ``delta`` defaults to the query's own resolution parameter — the
        paper's intended user experience. The filter fires on the first
        result and then only when the estimate has moved by >= delta.
        """
        return self._session.subscribe(self._qid, callback, delta=delta)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self, time: int) -> SnapshotEstimate | None:
        """Advance to ``time``: run a snapshot query iff one is due.

        Returns the snapshot estimate when a query ran, else None. Steps
        may be sparse (callers need only call at due times, but calling on
        every step is equally correct).
        """
        executed = self._session.step(time)
        estimate = executed.get(self._qid)
        if estimate is not None:
            # mirror the per-query series onto the engine-level metrics,
            # where single-query callers have always read them
            self.metrics.series("estimate").record(time, estimate.aggregate)
            self.metrics.series("samples_per_query").record(
                time, estimate.n_total
            )
        return estimate

    def attach(self, simulation: SimulationEngine) -> None:
        """Schedule this engine's snapshot queries on a simulation engine.

        The engine runs at :data:`~repro.sim.engine.PRIORITY_QUERY`, i.e.
        after the step's data updates and churn, honoring the paper's
        static-during-occasion assumption.
        """

        def run(time: int) -> None:
            self.step(time)
            end = self.continuous_query.end_time
            if end is None or self.next_due <= end:
                simulation.schedule_at(self.next_due, run, PRIORITY_QUERY)

        start = max(self.continuous_query.start_time, simulation.now)
        simulation.schedule_at(start, run, PRIORITY_QUERY)
