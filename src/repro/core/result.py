"""The running result ``X_hat[t]`` of a continuous query.

Between updates the estimate *holds* its last value (Section II's "holding"
semantics): ``X_hat[t] = X_hat[t_u]`` for ``t in (t_u, t_{u+1})``. The
record keeps every update so experiments can compare the estimated
trajectory against the oracle trajectory at any time.

:class:`NotificationFilter` implements the user-facing semantics of the
paper's motivating queries ("notify me whenever the average temperature
changes more than 2F"): it turns the stream of result updates into
notifications fired only when the result has moved by at least ``delta``
since the last notification — the false-alarm suppression Section II
attributes to the ``delta`` parameter.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import QueryError


@dataclass(frozen=True)
class UpdateRecord:
    """One result update: when, the estimate, and how many samples it cost.

    ``original_estimate`` differs from ``estimate`` only when forward
    regression retrospectively revised this record (see
    :mod:`repro.core.forward`); it preserves the value as first published.
    """

    time: int
    estimate: float
    n_samples: int = 0
    n_fresh: int = 0
    original_estimate: float | None = None

    @property
    def was_revised(self) -> bool:
        return (
            self.original_estimate is not None
            and self.original_estimate != self.estimate
        )


class NotificationFilter:
    """Delta-threshold notifications over a stream of result updates.

    Fires ``callback(record)`` on the first update seen and then whenever
    the estimate has moved by at least ``delta`` since the last *fired*
    notification. This is the user-visible behavior of the paper's
    "notify me whenever ... changes more than delta" queries; smaller
    result wobbles (within the query's own epsilon, say) never reach the
    user.
    """

    def __init__(self, delta: float, callback: Callable[[UpdateRecord], None]) -> None:
        if delta < 0:
            raise QueryError(f"delta must be >= 0, got {delta}")
        self._delta = delta
        self._callback = callback
        self._last_notified: float | None = None
        self.notifications_fired = 0
        self.updates_seen = 0

    def offer(self, record: UpdateRecord) -> bool:
        """Feed one update; returns True when a notification fired."""
        self.updates_seen += 1
        if (
            self._last_notified is not None
            and abs(record.estimate - self._last_notified) < self._delta
        ):
            return False
        self._last_notified = record.estimate
        self.notifications_fired += 1
        self._callback(record)
        return True


class RunningResult:
    """Piecewise-constant estimated aggregate trajectory."""

    def __init__(self) -> None:
        self._times: list[int] = []
        self._updates: list[UpdateRecord] = []

    def update(self, record: UpdateRecord) -> None:
        """Append an update (times must be strictly increasing)."""
        if self._times and record.time <= self._times[-1]:
            raise QueryError(
                f"updates must have increasing times; got {record.time} "
                f"after {self._times[-1]}"
            )
        self._times.append(record.time)
        self._updates.append(record)

    def __len__(self) -> int:
        return len(self._updates)

    @property
    def updates(self) -> list[UpdateRecord]:
        return list(self._updates)

    @property
    def update_times(self) -> list[int]:
        return list(self._times)

    def value_at(self, time: int) -> float:
        """Hold semantics: the most recent estimate at or before ``time``."""
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            raise QueryError(
                f"no estimate at time {time}; first update is at "
                f"{self._times[0] if self._times else 'never'}"
            )
        return self._updates[index].estimate

    def trajectory(self, times: list[int] | np.ndarray) -> np.ndarray:
        """Vector of held values at each requested time."""
        return np.array([self.value_at(int(t)) for t in times], dtype=float)

    def last(self) -> UpdateRecord:
        if not self._updates:
            raise QueryError("no updates recorded yet")
        return self._updates[-1]

    def subscribe(
        self, delta: float, callback: Callable[["UpdateRecord"], None]
    ) -> "NotificationFilter":
        """Attach a delta-threshold notification filter to this result.

        The returned filter must be fed the updates (the
        :class:`~repro.core.engine.DigestEngine` does this automatically
        for filters created through ``engine.subscribe``).
        """
        return NotificationFilter(delta, callback)

    def amend(self, time: int, revised_estimate: float) -> None:
        """Retrospectively revise the record at ``time`` (forward regression).

        The original value is preserved in ``original_estimate``; hold
        semantics afterwards serve the revised value.
        """
        index = bisect.bisect_left(self._times, time)
        if index >= len(self._times) or self._times[index] != time:
            raise QueryError(f"no update recorded at time {time}")
        record = self._updates[index]
        original = (
            record.original_estimate
            if record.original_estimate is not None
            else record.estimate
        )
        self._updates[index] = UpdateRecord(
            time=record.time,
            estimate=revised_estimate,
            n_samples=record.n_samples,
            n_fresh=record.n_fresh,
            original_estimate=original,
        )
