"""Forward regression: retrospective revision of the previous result.

The paper's first future-work item (Section VIII): "complement our
reverse regression algorithm by forward regression, which allows
adjusting the previous result." Repeated sampling regresses the *current*
occasion's values on the previous ones; once occasion ``k`` has been
evaluated, the same matched pairs support the reverse direction —
re-estimating the occasion-``k-1`` mean using everything known at ``k``:

    Y'_{k-1} = alpha * Y_hat_{k-1} + (1 - alpha) * Y_rev
    Y_rev    = mean(y_{k-1,g}) + b_back * (Y_hat_k - mean(y_{k,g}))
    b_back   = cov(y_{k-1,g}, y_{k,g}) / var(y_{k,g})

with inverse-variance weights, where the backward regression estimate's
variance is ``sigma^2 (1 - r^2) / g + r^2 var(Y_hat_k)`` (mirror image of
Table 1's regression estimator).

Caveat (documented, validated empirically): the two combined estimates
are not strictly independent — the matched samples contribute to both
``Y_hat_{k-1}`` and ``Y_rev`` — so the combination weights are
approximate and the reported revised variance is an estimate, not a
bound. The Monte-Carlo bench (``bench_forward.py``) shows the revision
reduces retrospective MSE whenever the inter-occasion correlation is
substantial, which is exactly the regime repeated sampling targets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError

_RHO_CLIP = 0.999


@dataclass(frozen=True)
class RevisedEstimate:
    """Outcome of one forward-regression revision.

    ``original``/``original_variance`` describe the estimate as published
    at its own occasion; ``revised``/``revised_variance`` the improved
    retrospective estimate.
    """

    original: float
    original_variance: float
    revised: float
    revised_variance: float

    @property
    def variance_reduction(self) -> float:
        """Fraction of the original variance removed (0 = no gain)."""
        if self.original_variance <= 0:
            return 0.0
        return max(0.0, 1.0 - self.revised_variance / self.original_variance)


def revise_previous(
    previous_estimate: float,
    previous_variance: float,
    matched_previous: np.ndarray,
    matched_current: np.ndarray,
    current_estimate: float,
    current_variance: float,
    sigma2: float,
    min_r_squared: float = 0.5,
) -> RevisedEstimate:
    """Revise the previous occasion's estimate with the current one.

    ``matched_previous``/``matched_current`` are the retained samples'
    values at the two occasions (the regression bridge). Falls back to the
    unrevised estimate when the matched portion is too small or degenerate
    to support a regression, or when the measured ``r^2`` is below
    ``min_r_squared`` — at weak correlation the (ignored) dependence
    between the combined estimates outweighs the regression information
    and revision would slightly *hurt* (verified by the Monte-Carlo bench:
    at rho=0.5 unrestricted revision costs ~2% RMSE, while at rho >= 0.85
    gated revision removes 10-20%).
    """
    matched_previous = np.asarray(matched_previous, dtype=float)
    matched_current = np.asarray(matched_current, dtype=float)
    if matched_previous.shape != matched_current.shape:
        raise QueryError("matched sample arrays must have equal shapes")
    if previous_variance < 0 or current_variance < 0 or sigma2 < 0:
        raise QueryError("variances must be non-negative")
    g = matched_previous.size
    unrevised = RevisedEstimate(
        original=previous_estimate,
        original_variance=previous_variance,
        revised=previous_estimate,
        revised_variance=previous_variance,
    )
    if g < 3:
        return unrevised
    current_var = float(np.mean((matched_current - matched_current.mean()) ** 2))
    if current_var <= 0:
        return unrevised
    covariance = float(
        np.mean(
            (matched_previous - matched_previous.mean())
            * (matched_current - matched_current.mean())
        )
    )
    previous_var = float(
        np.mean((matched_previous - matched_previous.mean()) ** 2)
    )
    b_back = covariance / current_var
    if previous_var > 0:
        r = covariance / math.sqrt(previous_var * current_var)
        r = max(-_RHO_CLIP, min(_RHO_CLIP, r))
    else:
        r = 0.0
    if r * r < min_r_squared:
        return unrevised
    regression = float(matched_previous.mean()) + b_back * (
        current_estimate - float(matched_current.mean())
    )
    var_regression = (
        sigma2 * (1.0 - r * r) / g + r * r * current_variance
    )
    if var_regression <= 0:
        return unrevised
    weight_original = (
        1.0 / previous_variance if previous_variance > 0 else float("inf")
    )
    weight_regression = 1.0 / var_regression
    if weight_original == float("inf"):
        return unrevised  # original is already exact
    total = weight_original + weight_regression
    revised = (
        weight_original * previous_estimate + weight_regression * regression
    ) / total
    return RevisedEstimate(
        original=previous_estimate,
        original_variance=previous_variance,
        revised=revised,
        revised_variance=1.0 / total,
    )
