"""Threshold monitoring with statistical confidence.

The paper's second motivating query — "notify me whenever the total
amount of available memory is more than 4GB" — is a *threshold* query: the
user cares about crossings, not values. Naively comparing each estimate
against the threshold flaps whenever the truth is within the estimate's
noise band. :class:`ThresholdMonitor` does it properly:

* a crossing is declared only when the estimate's confidence interval
  ``estimate ± z_p sqrt(var)`` lies entirely on one side of the threshold
  — otherwise the state is *uncertain* and the previous declared state
  holds (statistical hysteresis);
* an optional margin adds deterministic hysteresis on top for
  applications that want a dead band.

Feed it snapshot estimates (e.g. from ``DigestEngine.step``); it fires a
callback on every *declared* state change.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Callable

from repro.core.estimators import confidence_quantile
from repro.core.snapshot import SnapshotEstimate
from repro.errors import QueryError


class ThresholdState(enum.Enum):
    """Declared relation of the aggregate to the threshold."""

    UNKNOWN = "unknown"
    ABOVE = "above"
    BELOW = "below"


@dataclass(frozen=True)
class ThresholdEvent:
    """One declared state change."""

    time: int
    state: ThresholdState
    estimate: float
    half_width: float  # confidence half width at declaration


class ThresholdMonitor:
    """Confidence-gated threshold crossing detector.

    Parameters
    ----------
    threshold:
        The aggregate-level threshold (same units as the query result).
    confidence:
        Confidence level of the declaration test (a crossing is declared
        when the CI at this level clears the threshold).
    margin:
        Optional extra dead band: the CI must clear ``threshold ± margin``
        to flip the state.
    callback:
        Called with a :class:`ThresholdEvent` on every declared change.
    """

    def __init__(
        self,
        threshold: float,
        confidence: float = 0.95,
        margin: float = 0.0,
        callback: Callable[[ThresholdEvent], None] | None = None,
    ) -> None:
        if not 0.0 < confidence < 1.0:
            raise QueryError(f"confidence must be in (0, 1), got {confidence}")
        if margin < 0:
            raise QueryError(f"margin must be >= 0, got {margin}")
        self.threshold = threshold
        self.margin = margin
        self._z = confidence_quantile(confidence)
        self._callback = callback
        self.state = ThresholdState.UNKNOWN
        self.events: list[ThresholdEvent] = []
        self.estimates_seen = 0
        self.uncertain_estimates = 0

    def offer(self, estimate: SnapshotEstimate) -> ThresholdState:
        """Feed a snapshot estimate; returns the (possibly new) state.

        The estimate's variance is the *mean* estimator's; it is scaled to
        aggregate units through the estimate's own mean/aggregate ratio
        (exact for AVG; the SUM/COUNT scale factor for the others).
        """
        self.estimates_seen += 1
        scale = (
            abs(estimate.aggregate / estimate.mean)
            if estimate.mean != 0.0
            else float(estimate.population_size) or 1.0
        )
        half_width = self._z * math.sqrt(max(0.0, estimate.variance)) * scale
        low = estimate.aggregate - half_width
        high = estimate.aggregate + half_width
        if low > self.threshold + self.margin:
            decided = ThresholdState.ABOVE
        elif high < self.threshold - self.margin:
            decided = ThresholdState.BELOW
        else:
            self.uncertain_estimates += 1
            return self.state  # uncertain: hold the declared state
        if decided is not self.state:
            self.state = decided
            event = ThresholdEvent(
                time=estimate.time,
                state=decided,
                estimate=estimate.aggregate,
                half_width=half_width,
            )
            self.events.append(event)
            if self._callback is not None:
                self._callback(event)
        return self.state
