"""Repeated sampling with regression estimation (Section IV-B2).

Across successive sampling occasions the values of the tuples are
autocorrelated, so the evaluator *retains* part of the previous occasion's
sample-set, re-evaluates it, and uses the regression of current values on
previous values to sharpen the estimate; the rest of the sample-set is
*replaced* with fresh draws that track insertions, deletions and
pathological updates. This is sampling on successive occasions with
partial replacement (Cochran, "Sampling Techniques", ch. 12), which the
paper specializes to P2P databases.

Estimators at occasion ``k`` with ``g`` retained (matched) and ``f = n-g``
fresh samples (Table 1, generalized to the k-th occasion):

* fresh (regular):      ``Y_f = mean(y_fresh)``,
  ``var = sigma^2 / f``;
* retained (regression): ``Y_g = mean(y_k,g) + b (Y_hat_{k-1} - mean(y_{k-1},g))``,
  ``var = sigma^2 (1 - rho^2) / g + rho^2 var(Y_hat_{k-1})``;
* combined: inverse-variance weighting (Eq. 7), whose variance is
  ``1 / (W_f + W_g)`` (Eq. 8 in its general form).

At the second occasion ``var(Y_hat_1) = sigma^2 / n`` and the combined
variance reduces exactly to the paper's Eq. 8; minimizing over the
partition yields the paper's minimum variance (Eq. 10)::

    var_min = sigma^2 / (2n) * (1 + sqrt(1 - rho^2))

**A note on Eq. 9.** Optimizing Eq. 8 over the partition puts
``n / (1 + sqrt(1-rho^2))`` samples in the *fresh* portion and
``n sqrt(1-rho^2) / (1 + sqrt(1-rho^2))`` in the *retained* portion (at
``rho -> 1`` a tiny matched set already carries full regression
information, so fresh samples are worth more). The paper's Eq. 9 attaches
those expressions to the opposite portions, which is inconsistent with its
own Eq. 8 and Eq. 10; we implement the optimum consistent with Eq. 8/10
(Cochran's classical result). The minimum variance — which is what every
experiment measures — is identical either way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.estimators import (
    achieved_confidence,
    achieved_epsilon,
    sample_mean_and_variance,
    variance_target,
)
from repro.core.forward import RevisedEstimate, revise_previous
from repro.core.independent import EvaluatorConfig
from repro.core.query import Query
from repro.core.snapshot import SnapshotEstimate
from repro.db.aggregates import (
    AggregateOp,
    mean_error_budget,
    sample_contribution,
    scale_factor,
)
from repro.db.relation import P2PDatabase
from repro.errors import QueryError
from repro.sampling.operator import SampleSource

_RHO_CLIP = 0.999


def optimal_partition(n: int, rho: float) -> tuple[int, int]:
    """Optimal ``(g_retained, f_fresh)`` split of ``n`` samples (see Eq. 9 note).

    Retained fraction ``sqrt(1-rho^2) / (1 + sqrt(1-rho^2))``; at ``rho=0``
    the split is half-and-half (and immaterial), at ``|rho|=1`` everything
    is replaced because a single matched sample already carries the perfect
    regression information.
    """
    if n < 0:
        raise QueryError(f"n must be >= 0, got {n}")
    if not -1.0 <= rho <= 1.0:
        raise QueryError(f"rho must be in [-1, 1], got {rho}")
    s = math.sqrt(max(0.0, 1.0 - rho * rho))
    g = int(round(n * s / (1.0 + s)))
    g = min(max(g, 0), n)
    return g, n - g


def combined_variance(
    sigma2: float, n: int, g: int, rho: float, var_prev: float
) -> float:
    """Variance of the combined estimator for a given partition.

    General-occasion form; with ``var_prev = sigma2 / n`` it equals the
    paper's Eq. 8 (expressed in terms of the fresh count ``f = n - g``):
    ``sigma2 * (n - f rho^2) / (n^2 - f^2 rho^2)``.
    """
    if n < 1:
        raise QueryError(f"n must be >= 1, got {n}")
    if not 0 <= g <= n:
        raise QueryError(f"g must be in [0, {n}], got {g}")
    if sigma2 < 0 or var_prev < 0:
        raise QueryError("variances must be non-negative")
    f = n - g
    weight_fresh = f / sigma2 if sigma2 > 0 else float("inf")
    if g == 0:
        weight_matched = 0.0
    else:
        denominator = sigma2 * (1.0 - rho * rho) / g + rho * rho * var_prev
        weight_matched = float("inf") if denominator <= 0 else 1.0 / denominator
    total = weight_fresh + weight_matched
    if total == float("inf"):
        return 0.0
    if total <= 0:
        raise QueryError("degenerate allocation: zero total information")
    return 1.0 / total


def minimum_variance(sigma2: float, n: int, rho: float) -> float:
    """Eq. 10: best achievable second-occasion variance with ``n`` samples."""
    if n < 1:
        raise QueryError(f"n must be >= 1, got {n}")
    return sigma2 / (2.0 * n) * (1.0 + math.sqrt(max(0.0, 1.0 - rho * rho)))


def _best_partition(
    sigma2: float, n: int, rho: float, var_prev: float, retained_available: int
) -> tuple[int, float]:
    """Best feasible ``g`` (and its variance) for a fixed sample budget ``n``.

    Closed form: the matched weight ``g / (A + B g)`` with
    ``A = sigma2 (1-rho^2)``, ``B = rho^2 var_prev`` has marginal value
    ``A / (A + B g)^2``; equating to the fresh marginal ``1/sigma2`` gives
    ``g* = (sigma sqrt(A) - A) / B``. Degenerate cases (``B = 0``) are
    resolved by comparing marginals directly.
    """
    cap = min(n, max(0, retained_available))
    if cap == 0 or rho == 0.0:
        # no history, or regression worthless: all-fresh is optimal
        # (at rho=0 any split gives sigma2/n; choose g=0 for simplicity)
        return 0, combined_variance(sigma2, n, 0, rho, var_prev)
    a = sigma2 * (1.0 - rho * rho)
    b = rho * rho * var_prev
    if b == 0.0:
        # a perfect previous estimate: matched marginal 1/A beats 1/sigma2
        g_star = cap
    elif a == 0.0:
        # |rho| = 1: one matched sample carries everything
        g_star = 1
    else:
        g_star = (math.sqrt(sigma2 * a) - a) / b
    candidates = {0, cap}
    for candidate in (math.floor(g_star), math.ceil(g_star)):
        candidates.add(int(min(max(candidate, 0), cap)))
    best_g, best_var = 0, float("inf")
    for g in sorted(candidates):
        var = combined_variance(sigma2, n, g, rho, var_prev)
        if var < best_var:
            best_g, best_var = g, var
    return best_g, best_var


def solve_allocation(
    sigma2: float,
    rho: float,
    var_prev: float,
    v_target: float,
    retained_available: int,
    min_n: int = 2,
    max_n: int = 1_000_000,
) -> tuple[int, int]:
    """Smallest sample budget ``(n, g)`` whose best partition meets ``v_target``.

    Binary searches ``n`` (the variance of the best partition is
    non-increasing in ``n``). Raises when even ``max_n`` cannot meet the
    target.
    """
    if v_target <= 0:
        raise QueryError(f"variance target must be > 0, got {v_target}")
    if sigma2 == 0.0:
        return min_n, 0

    def best_var(n: int) -> float:
        return _best_partition(sigma2, n, rho, var_prev, retained_available)[1]

    if best_var(max_n) > v_target:
        raise QueryError(
            f"cannot reach variance target {v_target} with {max_n} samples "
            f"(sigma^2={sigma2}, rho={rho})"
        )
    low, high = min_n, max_n
    while low < high:
        middle = (low + high) // 2
        if best_var(middle) <= v_target:
            high = middle
        else:
            low = middle + 1
    g, _ = _best_partition(sigma2, low, rho, var_prev, retained_available)
    return low, g


@dataclass
class _OccasionState:
    """Sample-set and estimator state carried between occasions."""

    tuple_ids: list[int] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    estimate: float = 0.0
    variance: float = 0.0
    sigma2: float = 0.0
    rho: float | None = None

    @property
    def initialized(self) -> bool:
        return bool(self.tuple_ids)


class RepeatedEvaluator:
    """Snapshot evaluation by repeated sampling with partial replacement.

    The first occasion bootstraps with independent sampling; every later
    occasion solves for the cheapest ``(n, g)`` allocation meeting the
    variance target, re-evaluates ``g`` retained tuples (negligible
    communication cost: they are already located), draws ``f`` fresh tuples
    through the sampling operator, and combines the regression and regular
    estimates by inverse-variance weighting. Deleted tuples and departed
    nodes shrink the retainable pool automatically (the paper's "a sample
    tuple that is deleted ... is always replaced").
    """

    def __init__(
        self,
        database: P2PDatabase,
        operator: SampleSource,
        origin: int,
        query: Query,
        rng: np.random.Generator,
        population_size_provider: Callable[[], float] | None = None,
        config: EvaluatorConfig | None = None,
        initial_rho: float = 0.0,
    ) -> None:
        self._database = database
        self._operator = operator
        self._origin = origin
        self._query = query
        self._rng = rng
        self._population_size_provider = (
            population_size_provider
            if population_size_provider is not None
            else lambda: database.n_tuples
        )
        self._config = config if config is not None else EvaluatorConfig()
        if not -1.0 <= initial_rho <= 1.0:
            raise QueryError(f"initial_rho must be in [-1, 1], got {initial_rho}")
        if query.op is AggregateOp.AVG and query.predicate is not None:
            raise QueryError(
                "repeated sampling does not support AVG with a predicate "
                "(the subpopulation mean is a ratio of two means, and the "
                "regression machinery of Section IV-B2 targets a single "
                "mean); use the independent evaluator for filtered AVG"
            )
        self._initial_rho = initial_rho
        self._state = _OccasionState()
        #: forward-regression revision of the *previous* occasion's mean,
        #: refreshed by every non-bootstrap evaluate() (None at bootstrap
        #: or when no regression was possible). See repro.core.forward.
        self.last_revision: RevisedEstimate | None = None

    @property
    def config(self) -> EvaluatorConfig:
        return self._config

    @property
    def current_rho(self) -> float | None:
        """Most recent matched-pair correlation estimate (None before it exists)."""
        return self._state.rho

    def reset(self) -> None:
        """Forget all occasion state (next evaluate() bootstraps again)."""
        self._state = _OccasionState()
        self.last_revision = None

    def plan_demand(self, epsilon: float, confidence: float) -> int:
        """Forecast the *fresh* samples the next evaluate() will draw.

        Pure read: replays the allocation evaluate() will solve — the
        cheapest ``(n, g)`` partition meeting the variance target given
        the current sigma/rho state and the still-alive retainable pool —
        and returns its fresh portion ``n - g`` (retained samples cost no
        walks). Infeasible targets fall back to the pilot size; the
        forecast only sizes prefetch batches, evaluate() still tops up.
        """
        config = self._config
        if not self._state.initialized:
            return config.pilot_size
        state = self._state
        population = int(round(self._population_size_provider()))
        epsilon_mean = mean_error_budget(self._query.op, epsilon, population)
        sigma2 = max(state.sigma2, config.sigma_floor**2)
        rho_plan = state.rho if state.rho is not None else self._initial_rho
        alive = sum(1 for tid in state.tuple_ids if tid in self._database)
        if epsilon_mean == float("inf"):
            return max(
                0, config.pilot_size - min(alive, config.pilot_size // 2)
            )
        v_target = variance_target(epsilon_mean, confidence)
        try:
            n_needed, g_target = solve_allocation(
                sigma2,
                rho_plan,
                state.variance,
                v_target,
                retained_available=alive,
                min_n=config.pilot_size,
                max_n=config.max_sample_size,
            )
        except QueryError:
            return config.pilot_size
        if state.rho is None:
            g_target = min(alive, n_needed // 2)
        return max(0, n_needed - g_target)

    # ------------------------------------------------------------------
    # sampling helpers
    # ------------------------------------------------------------------

    def _value_of(self, row: dict[str, float]) -> float:
        query = self._query
        value, _ = sample_contribution(
            query.op, query.expression, query.predicate, row
        )
        return value

    def _draw_fresh(self, n: int) -> tuple[list[int], list[float]]:
        """Draw up to ``n`` fresh tuples (partial under the failure model)."""
        if n <= 0:
            return [], []
        samples = self._operator.sample_tuples(
            self._database, n, self._origin, allow_partial=True
        )
        ids = [s.tuple_id for s in samples]
        values = [self._value_of(s.row) for s in samples]
        return ids, values

    # ------------------------------------------------------------------
    # occasions
    # ------------------------------------------------------------------

    def _bootstrap(
        self, time: int, epsilon_mean: float, confidence: float, population: int
    ) -> SnapshotEstimate:
        """First occasion: independent sequential sampling, state recorded."""
        from repro.core.estimators import required_sample_size

        config = self._config
        ids, values = self._draw_fresh(config.pilot_size)
        if not values:
            raise QueryError(
                "the overlay returned no samples at all; cannot estimate"
            )
        needed = len(values)
        for _ in range(config.max_rounds):
            _, variance = sample_mean_and_variance(np.array(values))
            sigma = max(math.sqrt(variance), config.sigma_floor)
            if epsilon_mean == float("inf"):
                needed = len(values)
                break
            needed = required_sample_size(
                sigma,
                epsilon_mean,
                confidence,
                minimum=config.pilot_size,
                maximum=config.max_sample_size,
            )
            if needed <= len(values):
                break
            extra_ids, extra_values = self._draw_fresh(needed - len(values))
            if not extra_values:
                break  # the overlay is delivering nothing; degrade
            ids.extend(extra_ids)
            values.extend(extra_values)
        mean, variance = sample_mean_and_variance(np.array(values))
        n = len(values)
        degraded = n < needed
        self.last_revision = None
        self._state = _OccasionState(
            tuple_ids=ids,
            values=values,
            estimate=mean,
            variance=variance / n,
            sigma2=variance,
            rho=None,
        )
        scale = scale_factor(self._query.op, population)
        return SnapshotEstimate(
            time=time,
            mean=mean,
            aggregate=mean * scale,
            variance=variance / n,
            n_total=n,
            n_fresh=n,
            n_retained=0,
            population_size=population,
            degraded=degraded,
            achieved_epsilon=(
                achieved_epsilon(variance / n, confidence) * scale
                if degraded
                else None
            ),
            achieved_confidence=(
                achieved_confidence(epsilon_mean, variance / n)
                if degraded and epsilon_mean != float("inf")
                else None
            ),
        )

    def evaluate(
        self, time: int, epsilon: float, confidence: float
    ) -> SnapshotEstimate:
        """Evaluate the snapshot query at ``time`` to ``(epsilon, p)``."""
        population = int(round(self._population_size_provider()))
        epsilon_mean = mean_error_budget(self._query.op, epsilon, population)
        if not self._state.initialized:
            return self._bootstrap(time, epsilon_mean, confidence, population)

        state = self._state
        config = self._config
        sigma2 = max(state.sigma2, config.sigma_floor**2)
        rho_plan = state.rho if state.rho is not None else self._initial_rho

        # which previous samples are still retainable?
        alive = [
            (tid, value)
            for tid, value in zip(state.tuple_ids, state.values)
            if tid in self._database
        ]
        if epsilon_mean == float("inf"):
            v_target = float("inf")
            n_needed, g_target = config.pilot_size, min(
                len(alive), config.pilot_size // 2
            )
        else:
            v_target = variance_target(epsilon_mean, confidence)
            n_needed, g_target = solve_allocation(
                sigma2,
                rho_plan,
                state.variance,
                v_target,
                retained_available=len(alive),
                min_n=config.pilot_size,
                max_n=config.max_sample_size,
            )
        if state.rho is None:
            # correlation not yet measurable: retain half the set (variance-
            # neutral when rho is actually 0, and it seeds the rho estimate)
            g_target = min(len(alive), n_needed // 2)

        # retain a random subset of the alive previous samples
        if g_target > 0:
            picks = self._rng.choice(len(alive), size=g_target, replace=False)
            matched = [alive[int(i)] for i in picks]
        else:
            matched = []
        matched_prev = np.array([value for _, value in matched], dtype=float)
        matched_ids = [tid for tid, _ in matched]
        # re-evaluation: already located, negligible communication cost
        matched_curr = np.array(
            [self._value_of(self._database.read(tid)) for tid in matched_ids],
            dtype=float,
        )

        fresh_ids, fresh_values_list = self._draw_fresh(n_needed - len(matched_ids))
        fresh_values = np.array(fresh_values_list, dtype=float)

        estimate, variance, rho_measured, sigma2_new = self._combine(
            matched_prev,
            matched_curr,
            fresh_values,
            state.estimate,
            state.variance,
        )

        # sequential top-up: draw more fresh samples while short of target
        rounds = 0
        while (
            v_target != float("inf")
            and variance > v_target * (1.0 + 1e-9)
            and rounds < config.max_rounds
        ):
            shortfall_weight = 1.0 / v_target - 1.0 / max(variance, 1e-300)
            extra = max(1, int(math.ceil(shortfall_weight * sigma2_new)))
            extra = min(extra, config.max_sample_size - len(fresh_values_list))
            if extra <= 0:
                break
            extra_ids, extra_values = self._draw_fresh(extra)
            if not extra_values:
                break  # the overlay is delivering nothing; degrade
            fresh_ids.extend(extra_ids)
            fresh_values_list.extend(extra_values)
            fresh_values = np.array(fresh_values_list, dtype=float)
            estimate, variance, rho_measured, sigma2_new = self._combine(
                matched_prev,
                matched_curr,
                fresh_values,
                state.estimate,
                state.variance,
            )
            rounds += 1

        # forward regression: the matched pairs also support revising the
        # previous occasion's estimate with what occasion k learned
        if matched_curr.size >= 3:
            self.last_revision = revise_previous(
                state.estimate,
                state.variance,
                matched_prev,
                matched_curr,
                estimate,
                variance,
                sigma2_new,
            )
        else:
            self.last_revision = None

        g = len(matched_ids)
        f = len(fresh_ids)
        self._state = _OccasionState(
            tuple_ids=matched_ids + fresh_ids,
            values=matched_curr.tolist() + fresh_values_list,
            estimate=estimate,
            variance=variance,
            sigma2=sigma2_new,
            rho=rho_measured if rho_measured is not None else state.rho,
        )
        degraded = v_target != float("inf") and variance > v_target * (
            1.0 + 1e-9
        )
        scale = scale_factor(self._query.op, population)
        return SnapshotEstimate(
            time=time,
            mean=estimate,
            aggregate=estimate * scale,
            variance=variance,
            n_total=g + f,
            n_fresh=f,
            n_retained=g,
            population_size=population,
            degraded=degraded,
            achieved_epsilon=(
                achieved_epsilon(variance, confidence) * scale
                if degraded
                else None
            ),
            achieved_confidence=(
                achieved_confidence(epsilon_mean, variance)
                if degraded and epsilon_mean != float("inf")
                else None
            ),
        )

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------

    def _combine(
        self,
        matched_prev: np.ndarray,
        matched_curr: np.ndarray,
        fresh_values: np.ndarray,
        prev_estimate: float,
        prev_variance: float,
    ) -> tuple[float, float, float | None, float]:
        """Inverse-variance combination of the regression and regular estimates.

        Returns ``(estimate, variance, measured_rho, sigma2_estimate)``.
        ``measured_rho`` is None when the matched portion is too small to
        estimate a regression.
        """
        g = matched_curr.size
        f = fresh_values.size
        if g + f == 0:
            raise QueryError("cannot combine with zero samples")
        current_values = np.concatenate([matched_curr, fresh_values])
        _, sigma2 = sample_mean_and_variance(current_values)
        sigma2 = max(sigma2, self._config.sigma_floor**2)

        rho_measured: float | None = None
        estimates: list[tuple[float, float]] = []  # (estimate, variance)
        if g >= 3:
            prev_var = float(np.mean((matched_prev - matched_prev.mean()) ** 2))
            if prev_var > 0:
                covariance = float(
                    np.mean(
                        (matched_prev - matched_prev.mean())
                        * (matched_curr - matched_curr.mean())
                    )
                )
                b = covariance / prev_var
                curr_var = float(np.mean((matched_curr - matched_curr.mean()) ** 2))
                if curr_var > 0:
                    rho_measured = covariance / math.sqrt(prev_var * curr_var)
                    rho_measured = max(-_RHO_CLIP, min(_RHO_CLIP, rho_measured))
                regression = float(matched_curr.mean()) + b * (
                    prev_estimate - float(matched_prev.mean())
                )
                r2 = rho_measured**2 if rho_measured is not None else 0.0
                var_regression = sigma2 * (1.0 - r2) / g + r2 * prev_variance
                estimates.append((regression, max(var_regression, 1e-300)))
            else:
                estimates.append((float(matched_curr.mean()), sigma2 / g))
        elif g > 0:
            estimates.append((float(matched_curr.mean()), sigma2 / g))
        if f > 0:
            estimates.append((float(fresh_values.mean()), sigma2 / f))

        weights = [1.0 / var for _, var in estimates]
        total_weight = sum(weights)
        combined = sum(w * est for w, (est, _) in zip(weights, estimates))
        combined /= total_weight
        return combined, 1.0 / total_weight, rho_measured, sigma2
