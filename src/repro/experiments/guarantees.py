"""Statistical validation of the fixed-precision guarantees.

The paper *defines* the semantics (Section II) but never directly
measures them; a credible reproduction should. Two checks:

* **confidence coverage** — at each executed snapshot query,
  ``|X_hat - X| <= epsilon`` must hold with probability >= ``p``.
  Measured as the empirical hit rate over many snapshot queries across
  independent trials.
* **resolution adherence** — between updates the held result must not
  silently drift: we measure the fraction of *skipped* steps where the
  true aggregate had moved more than ``delta + epsilon`` away from the
  held estimate (the natural combined tolerance: delta for the resolution
  filter, epsilon for the estimate's own error). Extrapolation is
  predictive, so a small violation rate is inherent; it should stay small
  and shrink as the safety factor grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import Precision
from repro.experiments.harness import (
    build_instance,
    canonical_query,
    make_engine,
    pick_origin,
)
from repro.experiments.report import format_table
from repro.obs.console import emit


@dataclass
class CoverageResult:
    dataset: str
    evaluator: str
    epsilon: float
    confidence: float
    snapshots: int
    hits: int

    @property
    def coverage(self) -> float:
        return self.hits / self.snapshots if self.snapshots else 0.0

    def to_table(self) -> str:
        return format_table(
            ["quantity", "value"],
            [
                ["snapshot queries", self.snapshots],
                ["within epsilon", self.hits],
                ["empirical coverage", self.coverage],
                ["required confidence p", self.confidence],
            ],
            title=(
                f"Confidence coverage ({self.dataset}, {self.evaluator}, "
                f"epsilon={self.epsilon:g})"
            ),
        )


def coverage(
    dataset: str = "temperature",
    evaluator: str = "repeated",
    scale: float = 0.08,
    epsilon_ratio: float = 0.25,
    confidence: float = 0.95,
    trials: int = 5,
    steps_per_trial: int = 30,
    seed: int = 0,
) -> CoverageResult:
    """Empirical ``(epsilon, p)`` coverage over many snapshot queries."""
    probe = build_instance(dataset, scale, seed)
    sigma = probe.config.expected_sigma  # type: ignore[attr-defined]
    epsilon = epsilon_ratio * sigma
    precision = Precision(delta=sigma, epsilon=epsilon, confidence=confidence)
    snapshots = 0
    hits = 0
    for trial in range(trials):
        instance = build_instance(dataset, scale, seed + 100 * trial)
        origin = pick_origin(instance, seed + trial)
        engine = make_engine(
            instance, precision, "all", evaluator, origin, seed + trial
        )
        for time in range(min(steps_per_trial, instance.n_steps)):
            instance.step(time)
            estimate = engine.step(time)
            if estimate is None:
                continue
            truth = instance.true_average()
            snapshots += 1
            hits += abs(estimate.aggregate - truth) <= epsilon
    return CoverageResult(
        dataset=dataset,
        evaluator=evaluator,
        epsilon=epsilon,
        confidence=confidence,
        snapshots=snapshots,
        hits=hits,
    )


@dataclass
class ResolutionResult:
    dataset: str
    delta: float
    epsilon: float
    safety_factor: float
    skipped_steps: int
    violations: int
    snapshot_queries: int
    total_steps: int

    @property
    def violation_rate(self) -> float:
        return self.violations / self.skipped_steps if self.skipped_steps else 0.0

    def to_table(self) -> str:
        return format_table(
            ["quantity", "value"],
            [
                ["total steps", self.total_steps],
                ["snapshot queries", self.snapshot_queries],
                ["skipped steps", self.skipped_steps],
                ["drift violations", self.violations],
                ["violation rate", self.violation_rate],
            ],
            title=(
                f"Resolution adherence ({self.dataset}, delta={self.delta:g}, "
                f"safety={self.safety_factor:g})"
            ),
        )


def resolution(
    dataset: str = "temperature",
    scale: float = 0.08,
    delta_ratio: float = 1.0,
    epsilon_ratio: float = 0.25,
    safety_factor: float = 1.0,
    seed: int = 0,
    n_steps: int | None = None,
) -> ResolutionResult:
    """Drift-violation rate of PRED-3 on skipped steps."""
    instance = build_instance(dataset, scale, seed)
    sigma = instance.config.expected_sigma  # type: ignore[attr-defined]
    delta = delta_ratio * sigma
    epsilon = epsilon_ratio * sigma
    precision = Precision(delta=delta, epsilon=epsilon, confidence=0.95)
    origin = pick_origin(instance, seed)
    from repro.core.engine import DigestEngine, EngineConfig

    engine = DigestEngine(
        instance.graph,
        instance.database,
        canonical_query(instance, precision),
        origin=origin,
        rng=np.random.default_rng(seed + 1),
        config=EngineConfig(
            scheduler="pred",
            evaluator="repeated",
            safety_factor=safety_factor,
        ),
    )
    steps = n_steps if n_steps is not None else instance.n_steps
    skipped = 0
    violations = 0
    for time in range(steps):
        instance.step(time)
        estimate = engine.step(time)
        if estimate is None and len(engine.result):
            skipped += 1
            truth = instance.true_average()
            held = engine.current_estimate(time)
            if abs(truth - held) > delta + epsilon:
                violations += 1
    return ResolutionResult(
        dataset=dataset,
        delta=delta,
        epsilon=epsilon,
        safety_factor=safety_factor,
        skipped_steps=skipped,
        violations=violations,
        snapshot_queries=engine.metrics.snapshot_queries,
        total_steps=steps,
    )


def multi_query_coverage(
    dataset: str = "temperature",
    scale: float = 0.08,
    epsilon_ratios: tuple[float, ...] = (0.2, 0.25, 0.3),
    confidence: float = 0.95,
    trials: int = 5,
    steps_per_trial: int = 30,
    seed: int = 0,
) -> list[CoverageResult]:
    """Per-query ``(epsilon, p)`` coverage when queries *share* samples.

    The multi-query session reuses pooled samples and coalesced walk
    batches across co-resident queries; cross-query estimate correlation
    is the accepted price, but each query's own marginal guarantee must
    survive. One CoverageResult per query, tightest epsilon first.
    """
    from repro.core.query import ContinuousQuery, Query
    from repro.core.session import DigestSession
    from repro.db.aggregates import AggregateOp
    from repro.core.engine import EngineConfig

    probe = build_instance(dataset, scale, seed)
    sigma = probe.config.expected_sigma  # type: ignore[attr-defined]
    epsilons = [ratio * sigma for ratio in epsilon_ratios]
    snapshots = [0] * len(epsilons)
    hits = [0] * len(epsilons)
    for trial in range(trials):
        instance = build_instance(dataset, scale, seed + 100 * trial)
        origin = pick_origin(instance, seed + trial)
        steps = min(steps_per_trial, instance.n_steps)
        session = DigestSession(
            instance.graph,
            instance.database,
            origin,
            np.random.default_rng(seed + trial + 1),
        )
        qids = [
            session.add_query(
                ContinuousQuery(
                    Query(AggregateOp.AVG, instance.expression),
                    Precision(
                        delta=sigma, epsilon=epsilon, confidence=confidence
                    ),
                    duration=steps,
                ),
                config=EngineConfig(scheduler="all", evaluator="independent"),
            )
            for epsilon in epsilons
        ]
        for time in range(steps):
            instance.step(time)
            executed = session.step(time)
            if not executed:
                continue
            truth = instance.true_average()
            for index, qid in enumerate(qids):
                estimate = executed.get(qid)
                if estimate is None:
                    continue
                snapshots[index] += 1
                hits[index] += (
                    abs(estimate.aggregate - truth) <= epsilons[index]
                )
    return [
        CoverageResult(
            dataset=dataset,
            evaluator=f"shared q{index}",
            epsilon=epsilons[index],
            confidence=confidence,
            snapshots=snapshots[index],
            hits=hits[index],
        )
        for index in range(len(epsilons))
    ]


def main() -> None:
    for evaluator in ("independent", "repeated"):
        emit(coverage(evaluator=evaluator).to_table())
        emit()
    for safety in (1.0, 2.0):
        emit(resolution(safety_factor=safety).to_table())
        emit()
    for result in multi_query_coverage():
        emit(result.to_table())
        emit()


if __name__ == "__main__":
    main()
