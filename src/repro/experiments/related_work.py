"""Quantifying the related-work claims (Section VII).

The paper dismisses two in-network alternatives with qualitative
arguments; these experiments make both measurable:

* **Gossip (push-sum)** — "communication-intensive and ... only justified
  when all nodes of the network issue the same aggregate query
  simultaneously". :func:`gossip_crossover` measures total messages for
  ``K`` simultaneous querying nodes: gossip pays one network-wide flood
  regardless of ``K`` while Digest pays per querier, so there is a
  crossover ``K*`` below which sampling wins.
* **TAG tree aggregation** — "prone to severe miscalculations due to
  frequent fragmentation" under churn. :func:`tag_vs_churn` measures the
  tree baseline's aggregate error and excluded-node fraction as the churn
  rate grows, against Digest's sampling error on the same worlds.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.baselines.push_sum import PushSumBaseline
from repro.baselines.tree_aggregation import TreeAggregationBaseline
from repro.core.query import Precision
from repro.datasets.memory import MemoryConfig, MemoryDataset
from repro.experiments.harness import (
    build_instance,
    canonical_query,
    make_engine,
    pick_origin,
)
from repro.experiments.report import format_table
from repro.obs.console import emit

# ----------------------------------------------------------------------
# gossip crossover
# ----------------------------------------------------------------------


@dataclass
class GossipCrossoverResult:
    n_nodes: int
    gossip_messages_per_snapshot: int
    digest_messages_per_querier: float
    querier_counts: list[int]
    gossip_totals: list[int]
    digest_totals: list[float]

    @property
    def crossover(self) -> float:
        """Queriers needed before gossip becomes cheaper than Digest."""
        return self.gossip_messages_per_snapshot / max(
            1.0, self.digest_messages_per_querier
        )

    def to_table(self) -> str:
        rows = [
            [k, gossip, digest]
            for k, gossip, digest in zip(
                self.querier_counts, self.gossip_totals, self.digest_totals
            )
        ]
        return format_table(
            ["simultaneous queriers K", "gossip msgs", "Digest msgs"],
            rows,
            title=(
                f"Gossip vs Digest per snapshot (N={self.n_nodes}; "
                f"crossover at K* ~= {self.crossover:.0f} queriers)"
            ),
        )


def gossip_crossover(
    scale: float = 0.3,
    seed: int = 0,
    querier_counts: tuple[int, ...] = (1, 4, 16, 64),
) -> GossipCrossoverResult:
    """Messages per snapshot query, K queriers: gossip vs Digest sampling."""
    instance = build_instance("temperature", scale, seed)
    sigma = instance.config.expected_sigma  # type: ignore[attr-defined]
    precision = Precision(delta=sigma, epsilon=0.25 * sigma, confidence=0.95)
    continuous = canonical_query(instance, precision)

    # gossip: one run serves every node; cost independent of K
    gossip = PushSumBaseline(
        instance.graph,
        instance.database,
        continuous.query,
        origin=instance.graph.nodes()[0],
        rng=np.random.default_rng(seed + 1),
    )
    gossip_run = gossip.run_snapshot()

    # Digest: per-querier snapshot cost, measured on one querier
    engine = make_engine(
        instance, precision, "all", "repeated", instance.graph.nodes()[0], seed
    )
    for time in range(3):  # a few occasions so continued walks amortize
        instance.step(time)
        engine.step(time)
    digest_per_querier = engine.ledger.total / engine.metrics.snapshot_queries

    return GossipCrossoverResult(
        n_nodes=len(instance.graph),
        gossip_messages_per_snapshot=gossip_run.messages,
        digest_messages_per_querier=digest_per_querier,
        querier_counts=list(querier_counts),
        gossip_totals=[gossip_run.messages for _ in querier_counts],
        digest_totals=[digest_per_querier * k for k in querier_counts],
    )


# ----------------------------------------------------------------------
# TAG fragility under churn
# ----------------------------------------------------------------------


@dataclass
class TagChurnRow:
    leave_probability: float
    tree_mae: float
    digest_mae: float
    mean_lost_fraction: float


@dataclass
class TagChurnResult:
    rows: list[TagChurnRow]
    epsilon: float

    def to_table(self) -> str:
        return format_table(
            [
                "leave prob/step",
                "TAG mean abs error",
                "Digest mean abs error",
                "mean excluded nodes",
            ],
            [
                [
                    row.leave_probability,
                    row.tree_mae,
                    row.digest_mae,
                    row.mean_lost_fraction,
                ]
                for row in self.rows
            ],
            title=(
                "TAG tree aggregation vs Digest under churn "
                f"(Digest epsilon={self.epsilon:.2f})"
            ),
            precision=4,
        )


def tag_vs_churn(
    scale: float = 0.15,
    seed: int = 0,
    leave_probabilities: tuple[float, ...] = (0.0, 0.01, 0.03, 0.06),
    n_steps: int = 40,
    rebuild_interval: int = 16,
) -> TagChurnResult:
    """Aggregate error of tree aggregation vs Digest as churn grows."""
    rows = []
    sigma = MemoryConfig().expected_sigma
    epsilon = 0.25 * sigma
    for leave_probability in leave_probabilities:
        config = dataclasses.replace(
            MemoryConfig().scaled(scale), leave_probability=leave_probability
        )
        # --- TAG ---------------------------------------------------------
        instance = MemoryDataset(config, seed=seed).build()
        origin = pick_origin(instance, seed)
        continuous = canonical_query(
            instance, Precision(delta=sigma, epsilon=epsilon, confidence=0.95)
        )
        tree = TreeAggregationBaseline(
            instance.graph,
            instance.database,
            continuous.query,
            origin,
            rebuild_interval=rebuild_interval,
        )
        tree_errors, lost_fractions = [], []
        for time in range(n_steps):
            instance.step(time)
            snapshot = tree.step(time)
            truth = instance.true_average()
            tree_errors.append(abs(snapshot.estimate - truth))
            lost_fractions.append(
                snapshot.nodes_lost
                / max(1, snapshot.nodes_lost + snapshot.nodes_included)
            )
        # --- Digest on an identical world ---------------------------------
        instance = MemoryDataset(config, seed=seed).build()
        origin = pick_origin(instance, seed)
        engine = make_engine(
            instance,
            Precision(delta=sigma, epsilon=epsilon, confidence=0.95),
            "all",
            "repeated",
            origin,
            seed,
        )
        digest_errors = []
        for time in range(n_steps):
            instance.step(time)
            estimate = engine.step(time)
            if estimate is not None:
                digest_errors.append(
                    abs(estimate.aggregate - instance.true_average())
                )
        rows.append(
            TagChurnRow(
                leave_probability=leave_probability,
                tree_mae=float(np.mean(tree_errors)),
                digest_mae=float(np.mean(digest_errors)),
                mean_lost_fraction=float(np.mean(lost_fractions)),
            )
        )
    return TagChurnResult(rows=rows, epsilon=epsilon)


def main() -> None:
    emit(gossip_crossover().to_table())
    emit()
    emit(tag_vs_churn().to_table())


if __name__ == "__main__":
    main()
