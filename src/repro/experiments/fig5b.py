"""Figure 5-b: communication cost comparison (log scale in the paper).

Methodology (Section VI-B3): same query as Figure 5-a
(``delta/sigma = 1``, ``epsilon/sigma = 0.25``, ``p = 0.95``), but the
metric is the *total number of messages*:

* ``ALL+ALL`` — push every tuple every step (exact baseline);
* ``ALL+FILTER`` — Olston adaptive filters with precision window
  ``H - L < 2 epsilon``;
* ``ALL+INDEP`` — naive sample-based pull;
* ``Digest`` — PRED3 + RPT.

Expected shape: Digest beats ALL+FILTER by over an order of magnitude and
ALL+ALL by almost two; even ALL+INDEP beats ALL+FILTER; Digest's advantage
over ALL+INDEP roughly doubles relative to the sample-count comparison
because retained samples are (nearly) free to derive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.olston_filter import FilterConfig, OlstonFilterBaseline
from repro.baselines.push_all import PushAllBaseline
from repro.core.query import Precision
from repro.experiments.harness import (
    build_instance,
    canonical_query,
    make_engine,
    pick_origin,
    run_continuous_query,
)
from repro.experiments.report import format_table
from repro.obs.console import emit

SYSTEMS = ("ALL+ALL", "ALL+FILTER", "ALL+INDEP", "Digest(PRED3+RPT)")


@dataclass
class Fig5bResult:
    dataset: str
    sigma: float
    messages: dict[str, int]
    samples: dict[str, int]  # zero for push-based systems

    def ratio(self, system: str) -> float:
        """Message ratio of ``system`` over Digest."""
        digest = self.messages["Digest(PRED3+RPT)"]
        return self.messages[system] / digest if digest else float("inf")

    def to_table(self) -> str:
        headers = ["system", "total messages", "x Digest", "samples"]
        rows = [
            [name, self.messages[name], self.ratio(name), self.samples[name]]
            for name in SYSTEMS
        ]
        return format_table(
            headers,
            rows,
            title=f"Figure 5-b ({self.dataset}): total communication cost",
        )


def run(
    dataset: str = "temperature",
    scale: float = 0.25,
    seed: int = 0,
    delta_ratio: float = 1.0,
    epsilon_ratio: float = 0.25,
    confidence: float = 0.95,
) -> Fig5bResult:
    # default scale is larger than the other figures': the separation
    # between push- and sample-based systems grows with relation size, and
    # 0.25 is the smallest scale where the paper's orders-of-magnitude
    # ordering is unambiguous
    probe = build_instance(dataset, scale, seed)
    sigma = probe.config.expected_sigma  # type: ignore[attr-defined]
    precision = Precision(
        delta=delta_ratio * sigma,
        epsilon=epsilon_ratio * sigma,
        confidence=confidence,
    )
    messages: dict[str, int] = {}
    samples: dict[str, int] = {}

    # --- push-based systems -------------------------------------------------
    for name in ("ALL+ALL", "ALL+FILTER"):
        instance = build_instance(dataset, scale, seed)
        origin = pick_origin(instance, seed)
        query = canonical_query(instance, precision).query
        if name == "ALL+ALL":
            system = PushAllBaseline(
                instance.graph, instance.database, query, origin
            )
        else:
            system = OlstonFilterBaseline(
                instance.graph,
                instance.database,
                query,
                origin,
                FilterConfig(epsilon_bound=precision.epsilon),
            )
        for time in range(instance.n_steps):
            instance.step(time)
            system.step(time)
        messages[name] = system.ledger.total
        samples[name] = 0

    # --- sample-based systems ----------------------------------------------
    for name, scheduler, evaluator in (
        ("ALL+INDEP", "all", "independent"),
        ("Digest(PRED3+RPT)", "pred", "repeated"),
    ):
        instance = build_instance(dataset, scale, seed)
        origin = pick_origin(instance, seed)
        engine = make_engine(
            instance, precision, scheduler, evaluator, origin, seed
        )
        run_result = run_continuous_query(instance, engine)
        messages[name] = run_result.messages_total
        samples[name] = run_result.samples_total

    return Fig5bResult(
        dataset=dataset, sigma=sigma, messages=messages, samples=samples
    )


def main() -> None:
    from repro.experiments.plotting import ascii_bars

    result = run(dataset="temperature")
    emit(result.to_table())
    emit()
    emit(
        ascii_bars(
            {name: float(result.messages[name]) for name in SYSTEMS},
            title="Figure 5-b: total messages",
            log=True,
        )
    )


if __name__ == "__main__":
    main()
