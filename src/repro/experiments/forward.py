"""Forward regression (Section VIII extension): retrospective accuracy.

Monte-Carlo study of :func:`repro.core.forward.revise_previous` on the
two-occasion setting of Table 1: after occasion 2 is evaluated, how much
does revising the occasion-1 estimate reduce its error?

Reported: RMSE of the occasion-1 estimate before and after revision, and
the average predicted variance reduction, across correlation levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.forward import revise_previous
from repro.experiments.report import format_table
from repro.obs.console import emit


@dataclass
class ForwardResult:
    rho: float
    n: int
    g: int
    rmse_original: float
    rmse_revised: float
    mean_variance_reduction: float

    @property
    def improvement(self) -> float:
        if self.rmse_revised == 0:
            return float("inf")
        return self.rmse_original / self.rmse_revised

    def to_table(self) -> str:
        return format_table(
            ["quantity", "value"],
            [
                ["RMSE of Y_hat_1 (original)", self.rmse_original],
                ["RMSE of Y_hat_1 (revised)", self.rmse_revised],
                ["improvement", self.improvement],
                ["mean predicted var reduction", self.mean_variance_reduction],
            ],
            title=(
                f"Forward regression (rho={self.rho}, n={self.n}, g={self.g})"
            ),
            precision=4,
        )


def simulate(
    rho: float = 0.85,
    sigma: float = 1.0,
    population: int = 200_000,
    n: int = 100,
    trials: int = 3000,
    seed: int = 0,
) -> ForwardResult:
    """Two-occasion Monte-Carlo of the retrospective revision."""
    from repro.core.repeated import optimal_partition

    rng = np.random.default_rng(seed)
    y1 = rng.normal(0.0, sigma, population)
    noise = rng.normal(0.0, sigma, population)
    y2 = rho * y1 + np.sqrt(max(0.0, 1.0 - rho * rho)) * noise
    mean1 = float(y1.mean())
    g, f = optimal_partition(n, rho)
    g = max(g, 3)
    f = n - g

    originals = np.empty(trials)
    revised = np.empty(trials)
    reductions = np.empty(trials)
    for trial in range(trials):
        first = rng.integers(0, population, size=n)
        estimate1 = float(y1[first].mean())
        variance1 = sigma**2 / n
        matched = first[:g]
        fresh = rng.integers(0, population, size=f)
        # occasion-2 combined estimate (theoretical optimal weights)
        matched_prev = y1[matched]
        matched_curr = y2[matched]
        fresh_curr = y2[fresh]
        var_fresh = sigma**2 / f
        var_matched = sigma**2 * (1 - rho**2) / g + rho**2 * sigma**2 / n
        b = rho  # population regression coefficient (unit variances)
        regression2 = float(matched_curr.mean()) + b * (
            estimate1 - float(matched_prev.mean())
        )
        w_f, w_g = 1.0 / var_fresh, 1.0 / var_matched
        estimate2 = (w_f * float(fresh_curr.mean()) + w_g * regression2) / (
            w_f + w_g
        )
        variance2 = 1.0 / (w_f + w_g)

        revision = revise_previous(
            estimate1,
            variance1,
            matched_prev,
            matched_curr,
            estimate2,
            variance2,
            sigma**2,
        )
        originals[trial] = estimate1 - mean1
        revised[trial] = revision.revised - mean1
        reductions[trial] = revision.variance_reduction

    return ForwardResult(
        rho=rho,
        n=n,
        g=g,
        rmse_original=float(np.sqrt(np.mean(originals**2))),
        rmse_revised=float(np.sqrt(np.mean(revised**2))),
        mean_variance_reduction=float(np.mean(reductions)),
    )


def main() -> None:
    for rho in (0.5, 0.85, 0.95):
        emit(simulate(rho=rho).to_table())
        emit()


if __name__ == "__main__":
    main()
