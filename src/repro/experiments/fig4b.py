"""Figure 4-b: effect of the repeated sampling algorithm.

Methodology (Section VI-B2): both datasets, fixed resolution
(``delta/sigma = 1``) and confidence level (p = 0.95), vary the required
confidence interval ``epsilon``, and observe the average number of samples
(retained + fresh) per snapshot query for INDEP vs RPT.

Expected shape: both curves fall as ``1/epsilon^2``; RPT sits below INDEP
everywhere; the average improvement factor ``I = n_indep / n_rpt`` is
larger for the higher-correlation dataset (paper: 1.63 TEMPERATURE,
1.21 MEMORY).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import Precision
from repro.experiments.harness import (
    build_instance,
    make_engine,
    pick_origin,
    run_continuous_query,
)
from repro.experiments.report import format_table
from repro.obs.console import emit

# ratios chosen so the CLT sample size stays well above the pilot floor
# (n = (z_p / ratio)^2 ~ 43..384); beyond ~0.35 both algorithms bottom out
# at the pilot size and the comparison is vacuous
DEFAULT_EPSILON_RATIOS = (0.10, 0.15, 0.20, 0.25, 0.30)


@dataclass
class Fig4bResult:
    dataset: str
    sigma: float
    epsilon_ratios: list[float]
    samples_indep: list[float]  # avg samples per snapshot query
    samples_rpt: list[float]
    fresh_rpt: list[float]  # RPT's fresh-only average (costly samples)

    @property
    def improvement_factor(self) -> float:
        """Mean ``I = n_indep / n_rpt`` over the epsilon sweep."""
        ratios = [
            indep / rpt
            for indep, rpt in zip(self.samples_indep, self.samples_rpt)
            if rpt > 0
        ]
        return float(np.mean(ratios)) if ratios else 1.0

    def to_table(self) -> str:
        headers = [
            "epsilon/sigma",
            "INDEP samples/query",
            "RPT samples/query",
            "RPT fresh/query",
            "I",
        ]
        rows = []
        for index, ratio in enumerate(self.epsilon_ratios):
            indep = self.samples_indep[index]
            rpt = self.samples_rpt[index]
            rows.append(
                [
                    ratio,
                    indep,
                    rpt,
                    self.fresh_rpt[index],
                    indep / rpt if rpt else float("nan"),
                ]
            )
        return format_table(
            headers,
            rows,
            title=(
                f"Figure 4-b ({self.dataset}): samples per snapshot query "
                "vs epsilon"
            ),
        )


def run(
    dataset: str = "temperature",
    scale: float = 0.1,
    seed: int = 0,
    confidence: float = 0.95,
    epsilon_ratios: tuple[float, ...] = DEFAULT_EPSILON_RATIOS,
) -> Fig4bResult:
    """Run the Figure 4-b sweep for one dataset."""
    probe = build_instance(dataset, scale, seed)
    sigma = probe.config.expected_sigma  # type: ignore[attr-defined]
    samples_indep: list[float] = []
    samples_rpt: list[float] = []
    fresh_rpt: list[float] = []
    for ratio in epsilon_ratios:
        precision = Precision(
            delta=sigma, epsilon=ratio * sigma, confidence=confidence
        )
        per_algorithm: dict[str, tuple[float, float]] = {}
        for evaluator in ("independent", "repeated"):
            instance = build_instance(dataset, scale, seed)
            origin = pick_origin(instance, seed)
            engine = make_engine(
                instance, precision, "all", evaluator, origin, seed
            )
            run_result = run_continuous_query(instance, engine)
            queries = max(1, run_result.snapshot_queries)
            per_algorithm[evaluator] = (
                run_result.samples_total / queries,
                run_result.samples_fresh / queries,
            )
        samples_indep.append(per_algorithm["independent"][0])
        samples_rpt.append(per_algorithm["repeated"][0])
        fresh_rpt.append(per_algorithm["repeated"][1])
    return Fig4bResult(
        dataset=dataset,
        sigma=sigma,
        epsilon_ratios=list(epsilon_ratios),
        samples_indep=samples_indep,
        samples_rpt=samples_rpt,
        fresh_rpt=fresh_rpt,
    )


def main() -> None:
    from repro.experiments.plotting import ascii_chart

    for dataset in ("temperature", "memory"):
        result = run(dataset=dataset)
        emit(result.to_table())
        emit()
        emit(
            ascii_chart(
                {
                    "INDEP": (result.epsilon_ratios, result.samples_indep),
                    "RPT": (result.epsilon_ratios, result.samples_rpt),
                },
                title=f"Figure 4-b ({dataset}): samples/query vs epsilon/sigma",
                x_label="epsilon/sigma",
                y_label="samples per query",
            )
        )
        emit(
            f"{dataset}: average improvement factor I = "
            f"{result.improvement_factor:.2f}\n"
        )


if __name__ == "__main__":
    main()
