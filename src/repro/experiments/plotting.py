"""ASCII rendering of the paper's figures.

The benchmark harness reports tables; these helpers additionally render
the figure *shapes* as plain-text charts so a terminal run of an
experiment module shows the same curves the paper plots — no plotting
dependency required.

* :func:`ascii_chart` — multi-series line/scatter chart on a character
  grid (Figures 4-a and 4-b).
* :func:`ascii_bars` — horizontal bar chart with optional log scale
  (Figure 5-a and the log-axis Figure 5-b).
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(size - 1, max(0, int(round(position * (size - 1)))))


def ascii_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``label -> (xs, ys)`` series as a character-grid chart."""
    if not series:
        raise ValueError("no series to plot")
    if width < 10 or height < 4:
        raise ValueError("chart must be at least 10x4 characters")
    all_x = [x for xs, _ in series.values() for x in xs]
    all_y = [y for _, ys in series.values() for y in ys]
    if not all_x:
        raise ValueError("series contain no points")
    x_low, x_high = min(all_x), max(all_x)
    y_low, y_high = min(all_y), max(all_y)
    if y_low == y_high:
        y_low, y_high = y_low - 1.0, y_high + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for index, (label, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} = {label}")
        for x, y in zip(xs, ys):
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            grid[row][column] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={y_high:g}, bottom={y_low:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_low:g} .. {x_high:g}")
    lines.append(" " + "   ".join(legend))
    return "\n".join(lines)


def ascii_bars(
    values: Mapping[str, float],
    width: int = 50,
    title: str | None = None,
    log: bool = False,
) -> str:
    """Render ``label -> value`` as horizontal bars (optionally log scale)."""
    if not values:
        raise ValueError("no bars to plot")
    if any(value < 0 for value in values.values()):
        raise ValueError("bar values must be non-negative")
    if log and any(value <= 0 for value in values.values()):
        raise ValueError("log-scale bars need strictly positive values")

    def transform(value: float) -> float:
        return math.log10(value) if log else value

    maximum = max(transform(value) for value in values.values())
    minimum = 0.0 if not log else min(transform(v) for v in values.values()) - 0.5
    span = max(maximum - minimum, 1e-12)
    label_width = max(len(label) for label in values)
    lines = []
    if title:
        lines.append(title + (" (log scale)" if log else ""))
    for label, value in values.items():
        length = max(1, int(round((transform(value) - minimum) / span * width)))
        lines.append(f"{label.rjust(label_width)} |{'#' * length} {value:g}")
    return "\n".join(lines)
