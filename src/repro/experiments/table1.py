"""Table 1: Monte-Carlo verification of the estimator variances.

Simulates the two-occasion repeated-sampling setting on a synthetic
population with a controlled tuple-level correlation ``rho``:

* occasion 1 values ``y_1`` and occasion 2 values ``y_2`` are bivariate
  normal with correlation ``rho`` and common variance ``sigma^2``;
* each trial draws ``n`` first-occasion samples, retains ``g``, replaces
  ``f = n - g``, and computes the regular (fresh), regression (retained)
  and combined estimates.

Reported for each estimator: the Monte-Carlo variance across trials vs the
closed-form from Table 1 / Eq. 8, plus the optimal-partition minimum
variance (Eq. 10) against the empirical variance at the optimal split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.repeated import (
    combined_variance,
    minimum_variance,
    optimal_partition,
)
from repro.experiments.report import format_table
from repro.obs.console import emit


@dataclass
class Table1Result:
    rho: float
    sigma2: float
    n: int
    g: int
    empirical: dict[str, float]  # estimator name -> Monte-Carlo variance
    theoretical: dict[str, float]  # estimator name -> closed form

    def to_table(self) -> str:
        headers = ["estimator", "Monte-Carlo var", "closed form", "ratio"]
        rows = []
        for name in self.empirical:
            emp = self.empirical[name]
            theory = self.theoretical[name]
            rows.append([name, emp, theory, emp / theory if theory else 0.0])
        return format_table(
            headers,
            rows,
            title=(
                f"Table 1 (rho={self.rho}, sigma^2={self.sigma2}, "
                f"n={self.n}, g={self.g}): estimator variances"
            ),
            precision=4,
        )


def simulate(
    rho: float = 0.85,
    sigma: float = 1.0,
    population: int = 200_000,
    n: int = 100,
    g: int | None = None,
    trials: int = 4000,
    seed: int = 0,
) -> Table1Result:
    """Monte-Carlo the two-occasion estimators on a synthetic population."""
    rng = np.random.default_rng(seed)
    # bivariate normal population with exactly controlled moments
    y1 = rng.normal(0.0, sigma, population)
    noise = rng.normal(0.0, sigma, population)
    y2 = rho * y1 + np.sqrt(max(0.0, 1.0 - rho * rho)) * noise
    mean2 = float(y2.mean())
    if g is None:
        g, _ = optimal_partition(n, rho)
    f = n - g

    fresh_estimates = np.empty(trials)
    regression_estimates = np.empty(trials)
    combined_estimates = np.empty(trials)
    for trial in range(trials):
        first = rng.integers(0, population, size=n)
        matched = first[:g]
        y1_all = y1[first]
        y1_matched = y1[matched]
        y2_matched = y2[matched]
        fresh = y2[rng.integers(0, population, size=f)] if f else np.empty(0)

        estimate_y1 = float(y1_all.mean())
        fresh_mean = float(fresh.mean()) if f else float("nan")
        if g >= 2 and float(np.var(y1_matched)) > 0:
            b = float(
                np.mean(
                    (y1_matched - y1_matched.mean())
                    * (y2_matched - y2_matched.mean())
                )
                / np.var(y1_matched)
            )
        else:
            b = 0.0
        regression = float(y2_matched.mean()) + b * (
            estimate_y1 - float(y1_matched.mean())
        )
        # combine with the *theoretical* optimal weights (the closed forms
        # under test); data-driven weights add higher-order noise
        var_fresh = sigma**2 / f if f else float("inf")
        var_regression = sigma**2 * (1 - rho**2) / g + rho**2 * sigma**2 / n
        w_fresh = 1.0 / var_fresh
        w_regression = 1.0 / var_regression
        combined = (w_fresh * fresh_mean + w_regression * regression) / (
            w_fresh + w_regression
        )
        fresh_estimates[trial] = fresh_mean
        regression_estimates[trial] = regression
        combined_estimates[trial] = combined

    empirical = {
        "fresh (regular)": float(np.var(fresh_estimates - mean2)),
        "retained (regression)": float(np.var(regression_estimates - mean2)),
        "combined": float(np.var(combined_estimates - mean2)),
    }
    theoretical = {
        "fresh (regular)": sigma**2 / f if f else float("inf"),
        "retained (regression)": sigma**2 * (1 - rho**2) / g
        + rho**2 * sigma**2 / n,
        "combined": combined_variance(
            sigma**2, n, g, rho, sigma**2 / n
        ),
    }
    result = Table1Result(
        rho=rho,
        sigma2=sigma**2,
        n=n,
        g=g,
        empirical=empirical,
        theoretical=theoretical,
    )
    return result


def main() -> None:
    for rho in (0.5, 0.85, 0.95):
        result = simulate(rho=rho)
        emit(result.to_table())
        opt = minimum_variance(result.sigma2, result.n, rho)
        emit(
            f"Eq. 10 minimum variance at optimal split: {opt:.5f} "
            f"(empirical combined: {result.empirical['combined']:.5f})\n"
        )


if __name__ == "__main__":
    main()
