"""Design-choice ablations called out in DESIGN.md.

1. **Laziness** — the 1/2 self-loop makes the chain aperiodic; on a
   bipartite overlay (even ring, grid) a non-lazy walk oscillates and
   never converges in TV. Measured: TV after a long walk, lazy vs not.
2. **Continued walks vs fresh walks** — the reset-time optimization
   (Section VI-A). Measured: messages per sample with the pool on/off.
3. **Two-stage vs cluster sampling** — Section III's argument: with high
   intra-node value correlation, cluster samples are nearly redundant
   within a node. Measured: estimator RMSE at equal tuple budget.
4. **Replacement policy** — optimal partition vs all-retain vs
   all-replace (Eq. 9/10 vs the extremes). Measured: combined-estimator
   variance via the closed form and Monte-Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.relation import P2PDatabase, Schema
from repro.experiments.report import format_table
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology, power_law_topology, ring_topology
from repro.obs.console import emit
from repro.sampling.metropolis import metropolis_matrix
from repro.sampling.mixing import total_variation
from repro.sampling.operator import SamplerConfig
from repro.sampling.pool import SamplePool
from repro.sampling.weights import uniform_weights
from repro.core.repeated import combined_variance, optimal_partition


# ----------------------------------------------------------------------
# 1. laziness
# ----------------------------------------------------------------------

@dataclass
class LazinessResult:
    n_nodes: int
    steps: int
    tv_lazy: float
    tv_nonlazy: float

    def to_table(self) -> str:
        return format_table(
            ["variant", "TV distance after walk"],
            [["lazy (1/2)", self.tv_lazy], ["non-lazy", self.tv_nonlazy]],
            title=(
                f"Ablation 1: laziness on a bipartite ring "
                f"(N={self.n_nodes}, {self.steps} steps)"
            ),
            precision=4,
        )


def laziness_ablation(n_nodes: int = 64, steps: int = 4000) -> LazinessResult:
    """Non-lazy walks on a bipartite graph never mix; lazy walks do."""
    graph = OverlayGraph(ring_topology(n_nodes), n_nodes=n_nodes)
    weight = uniform_weights()
    results = {}
    for laziness in (0.5, 0.0):
        _, matrix = metropolis_matrix(graph, weight, laziness=laziness)
        distribution = np.zeros(n_nodes)
        distribution[0] = 1.0
        for _ in range(steps):
            distribution = distribution @ matrix
        target = np.full(n_nodes, 1.0 / n_nodes)
        results[laziness] = total_variation(distribution, target)
    return LazinessResult(
        n_nodes=n_nodes,
        steps=steps,
        tv_lazy=results[0.5],
        tv_nonlazy=results[0.0],
    )


# ----------------------------------------------------------------------
# 2. continued walks
# ----------------------------------------------------------------------

@dataclass
class ContinuedWalkResult:
    n_nodes: int
    n_samples: int
    msgs_continued: float
    msgs_fresh: float

    @property
    def speedup(self) -> float:
        return self.msgs_fresh / self.msgs_continued if self.msgs_continued else 0.0

    def to_table(self) -> str:
        return format_table(
            ["variant", "messages/sample"],
            [
                ["continued walks (reset time)", self.msgs_continued],
                ["fresh walks (full mixing)", self.msgs_fresh],
            ],
            title=(
                f"Ablation 2: continued walks "
                f"(power-law N={self.n_nodes}, {self.n_samples} samples "
                f"over 4 occasions)"
            ),
        )


def continued_walk_ablation(
    n_nodes: int = 400, n_samples: int = 50, occasions: int = 4, seed: int = 0
) -> ContinuedWalkResult:
    rng = np.random.default_rng(seed)
    edges = power_law_topology(n_nodes, rng=rng)
    results = {}
    for continued in (True, False):
        graph = OverlayGraph(edges, n_nodes=n_nodes)
        database = P2PDatabase(Schema(("v",)), graph.nodes())
        gen = np.random.default_rng(seed + 1)
        for node in graph.nodes():
            for _ in range(1 + int(gen.integers(0, 4))):
                database.insert(node, {"v": float(gen.normal(0, 1))})
        ledger = MessageLedger()
        operator = SamplePool(
            graph,
            np.random.default_rng(seed + 2),
            ledger,
            SamplerConfig(continued_walks=continued),
        ).operator
        total = 0
        for _ in range(occasions):
            operator.sample_tuples(database, n_samples, origin=0)
            total += n_samples
            if not continued:
                operator.reset_pool()
        results[continued] = ledger.total / total
    return ContinuedWalkResult(
        n_nodes=n_nodes,
        n_samples=n_samples,
        msgs_continued=results[True],
        msgs_fresh=results[False],
    )


# ----------------------------------------------------------------------
# 3. two-stage vs cluster sampling
# ----------------------------------------------------------------------

@dataclass
class ClusterResult:
    n_nodes: int
    tuples_per_node: int
    rmse_two_stage: float
    rmse_cluster: float

    def to_table(self) -> str:
        return format_table(
            ["scheme", "RMSE of AVG estimate"],
            [
                ["two-stage", self.rmse_two_stage],
                ["cluster", self.rmse_cluster],
            ],
            title=(
                "Ablation 3: two-stage vs cluster sampling under intra-node "
                f"correlation (N={self.n_nodes} nodes x "
                f"{self.tuples_per_node} tuples)"
            ),
            precision=4,
        )


def cluster_sampling_ablation(
    n_nodes: int = 144,
    tuples_per_node: int = 8,
    budget: int = 64,
    trials: int = 60,
    seed: int = 0,
) -> ClusterResult:
    """Equal tuple budget; node contents highly correlated (clustered)."""
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(mesh_topology(n_nodes), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        node_mean = float(rng.normal(0, 10))  # strong intra-node clustering
        for _ in range(tuples_per_node):
            database.insert(node, {"v": node_mean + float(rng.normal(0, 1))})
    from repro.db.expression import Expression

    truth = float(database.exact_values(Expression("v")).mean())
    errors = {"two_stage": [], "cluster": []}
    for trial in range(trials):
        operator = SamplePool(
            graph, np.random.default_rng(seed + 10 + trial)
        ).operator
        samples = operator.sample_tuples(database, budget, origin=0)
        estimate = float(np.mean([s.row["v"] for s in samples]))
        errors["two_stage"].append((estimate - truth) ** 2)

        operator_c = SamplePool(
            graph, np.random.default_rng(seed + 5000 + trial)
        ).operator
        values: list[float] = []
        while len(values) < budget:
            _, batch = operator_c.cluster_sample(database, origin=0)
            values.extend(s.row["v"] for s in batch)
        estimate_c = float(np.mean(values[:budget]))
        errors["cluster"].append((estimate_c - truth) ** 2)
    return ClusterResult(
        n_nodes=n_nodes,
        tuples_per_node=tuples_per_node,
        rmse_two_stage=float(np.sqrt(np.mean(errors["two_stage"]))),
        rmse_cluster=float(np.sqrt(np.mean(errors["cluster"]))),
    )


# ----------------------------------------------------------------------
# 4. replacement policy
# ----------------------------------------------------------------------

@dataclass
class ReplacementResult:
    rho: float
    n: int
    variance_all_replace: float
    variance_all_retain: float
    variance_optimal: float
    g_optimal: int

    def to_table(self) -> str:
        return format_table(
            ["policy", "combined variance"],
            [
                ["all replace (g=0)", self.variance_all_replace],
                [f"all retain (g={self.n})", self.variance_all_retain],
                [f"optimal (g={self.g_optimal})", self.variance_optimal],
            ],
            title=(
                f"Ablation 4: replacement policy (rho={self.rho}, "
                f"n={self.n}, sigma^2=1)"
            ),
            precision=5,
        )


def replacement_policy_ablation(rho: float = 0.9, n: int = 100) -> ReplacementResult:
    """Closed-form comparison: both extremes give sigma^2/n (Eq. 8 note)."""
    sigma2 = 1.0
    var_prev = sigma2 / n
    g_opt, _ = optimal_partition(n, rho)
    return ReplacementResult(
        rho=rho,
        n=n,
        variance_all_replace=combined_variance(sigma2, n, 0, rho, var_prev),
        variance_all_retain=combined_variance(sigma2, n, n, rho, var_prev),
        variance_optimal=combined_variance(sigma2, n, g_opt, rho, var_prev),
        g_optimal=g_opt,
    )


# ----------------------------------------------------------------------
# 5. Metropolis targeting vs importance reweighting
# ----------------------------------------------------------------------

@dataclass
class ImportanceResult:
    n_nodes: int
    budget: int
    rmse_metropolis: float
    rmse_importance: float
    mean_effective_sample_size: float

    def to_table(self) -> str:
        return format_table(
            ["sampler", "RMSE of AVG estimate"],
            [
                ["Metropolis two-stage (Digest)", self.rmse_metropolis],
                ["plain walk + SNIS reweight", self.rmse_importance],
            ],
            title=(
                "Ablation 5: Metropolis targeting vs importance reweighting "
                f"(N={self.n_nodes}, budget={self.budget}, "
                f"ESS={self.mean_effective_sample_size:.1f})"
            ),
            precision=4,
        )


def importance_sampling_ablation(
    n_nodes: int = 200,
    budget: int = 80,
    trials: int = 40,
    seed: int = 0,
) -> ImportanceResult:
    """Equal sample budgets on a skewed world: targeting should win.

    The world is adversarial for reweighting: content sizes are skewed
    *against* degree (hubs hold little data), stretching the importance
    weights ``m_v / d_v``.
    """
    from repro.db.expression import Expression
    from repro.sampling.importance import (
        ImportanceSampler,
        effective_sample_size,
        self_normalized_mean,
    )

    rng = np.random.default_rng(seed)
    graph = OverlayGraph(power_law_topology(n_nodes, rng=rng), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    degrees = {node: graph.degree(node) for node in graph.nodes()}
    max_degree = max(degrees.values())
    for node in graph.nodes():
        # low-degree nodes hold many tuples, hubs few: adversarial skew
        count = 1 + 2 * (max_degree - degrees[node])
        node_mean = float(rng.normal(0, 5))
        for _ in range(count):
            database.insert(node, {"v": node_mean + float(rng.normal(0, 1))})
    expression = Expression("v")
    truth = float(database.exact_values(expression).mean())

    errors = {"metropolis": [], "importance": []}
    sizes = []
    for trial in range(trials):
        operator = SamplePool(
            graph,
            np.random.default_rng(seed + 100 + trial),
            sampler_config=SamplerConfig(continued_walks=False),
        ).operator
        samples = operator.sample_tuples(database, budget, origin=0)
        estimate = float(np.mean([s.row["v"] for s in samples]))
        errors["metropolis"].append((estimate - truth) ** 2)

        sampler = ImportanceSampler(
            graph, np.random.default_rng(seed + 5000 + trial)
        )
        weighted = sampler.sample_weighted_tuples(
            database, expression, budget, origin=0
        )
        errors["importance"].append(
            (self_normalized_mean(weighted) - truth) ** 2
        )
        sizes.append(effective_sample_size(weighted))
    return ImportanceResult(
        n_nodes=n_nodes,
        budget=budget,
        rmse_metropolis=float(np.sqrt(np.mean(errors["metropolis"]))),
        rmse_importance=float(np.sqrt(np.mean(errors["importance"]))),
        mean_effective_sample_size=float(np.mean(sizes)),
    )


def main() -> None:
    emit(laziness_ablation().to_table() + "\n")
    emit(continued_walk_ablation().to_table() + "\n")
    emit(cluster_sampling_ablation().to_table() + "\n")
    emit(replacement_policy_ablation().to_table() + "\n")
    emit(importance_sampling_ablation().to_table())


if __name__ == "__main__":
    main()
