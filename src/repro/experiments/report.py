"""Plain-text table rendering for experiment output.

Every experiment prints through :func:`format_table` so the benchmark logs
read like the paper's tables.
"""

from __future__ import annotations

from typing import Sequence


def format_value(value: object, precision: int = 3) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e6 or abs(value) < 1e-3):
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    rendered = [[format_value(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
