"""Experiment harness reproducing every table and figure (Section VI).

Each module exposes ``run(...) -> <Result>`` returning structured rows and
a ``main()`` that prints the same series the paper plots:

* :mod:`repro.experiments.fig4a` — snapshot queries vs ``delta/sigma``
  for ALL and PRED-k (Figure 4-a).
* :mod:`repro.experiments.fig4b` — samples per snapshot query vs
  ``epsilon`` for INDEP and RPT (Figure 4-b).
* :mod:`repro.experiments.fig5a` — total samples for the four
  scheduler x evaluator combinations (Figure 5-a) and the improvement
  factors quoted in Section VI-B3.
* :mod:`repro.experiments.fig5b` — total messages for ALL+ALL,
  ALL+FILTER, ALL+INDEP and Digest (Figure 5-b).
* :mod:`repro.experiments.table1` — Monte-Carlo verification of the
  estimator variances (Table 1).
* :mod:`repro.experiments.table2` — generator calibration vs the
  published dataset parameters (Table II).
* :mod:`repro.experiments.mixing` — sampling cost scaling vs network
  size (Theorem 4 and the measured messages-per-sample).
* :mod:`repro.experiments.ablations` — design-choice ablations called
  out in DESIGN.md.
* :mod:`repro.experiments.multi_query` — shared multi-query session vs
  independent engines: messages per query, pool hit rate, per-query
  ``(epsilon, p)`` coverage (the amortization of Section III's shared
  operator).
"""

from repro.experiments.harness import (
    ExperimentRun,
    build_instance,
    make_engine,
    run_continuous_query,
)

__all__ = [
    "ExperimentRun",
    "build_instance",
    "make_engine",
    "run_continuous_query",
]
