"""Estimate honesty and recovery under correlated overlay partitions.

The paper's sampling operator assumes the overlay stays connected so the
Metropolis walk mixes over the whole population (Section V). This
experiment measures what happens when that assumption breaks in the
*correlated* way real overlays do — a scheduled cut splits the network
into regions for a while, then heals. A grid of (partition width x
duration x heal policy) cells each runs a multi-query
:class:`~repro.core.session.DigestSession` while a
:class:`~repro.network.partitions.PartitionPlan` opens and heals one cut,
and reports:

* **honesty** — while the cut is open, every emitted estimate must carry
  ``reachable_fraction < 1``, be flagged ``degraded``, and restate its
  confidence against the reachable sub-population (Eq. 5 re-solved); an
  estimate that silently pretends to cover the whole relation is a
  *dishonest* cell and fails the run;
* **scoped accuracy** — the partitioned estimate should track the truth
  *over the reachable region*, not the unreachable global truth;
* **recovery** — after the heal, how many snapshot occasions each query
  needs before estimates return to non-degraded (the pool was invalidated
  at the scope change, so this measures honest re-convergence, not stale
  sample reuse).

Everything is seeded: topology/data draw from ``seed``, the walk RNG from
``seed + 2`` and the partition plan from ``seed + 3`` (its own stream —
enabling partitions never perturbs walk trajectories).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.core.query import ContinuousQuery, Precision, Query
from repro.core.session import DigestSession, EngineConfig
from repro.core.snapshot import SnapshotEstimate
from repro.db.aggregates import AggregateOp
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.experiments.report import format_table
from repro.network.graph import OverlayGraph
from repro.network.partitions import (
    PartitionEpisode,
    PartitionPlan,
    PartitionSchedule,
)
from repro.network.topology import power_law_topology
from repro.obs.analysis import verify_trace_consistency
from repro.obs.console import emit
from repro.obs.export import export_trace
from repro.obs.schema import SPAN_PARTITION_CELL
from repro.obs.tracer import (
    RecordingTracer,
    RunMetricsSink,
    Trace,
    bridge_fault_log,
)
from repro.sim.metrics import RunMetrics


@dataclass(frozen=True)
class PartitionSweepConfig:
    """Shape of the sweep (sizes chosen so full mode runs in seconds)."""

    n_nodes: int = 60
    widths: tuple[float, ...] = (0.2, 0.4)
    durations: tuple[int, ...] = (12, 30)
    heal_policies: tuple[str, ...] = ("repair", "passive")
    partition_start: int = 20
    horizon: int = 100
    period: int = 4
    epsilon: float = 1.0
    confidence: float = 0.95
    #: snapshot occasions a query may stay degraded after the heal
    recovery_bound: int = 2


@dataclass
class PartitionRow:
    """Measurements for one (width, duration, heal policy) cell."""

    width: float
    duration: int
    heal_policy: str
    n_snapshots: int
    n_partitioned: int
    n_dishonest: int
    min_fraction: float
    error_clean: float
    error_scoped: float
    recovery_occasions: int | None
    recovered: bool
    faults: dict[str, int]


@dataclass
class PartitionSweepResult:
    config: PartitionSweepConfig
    rows: list[PartitionRow]
    metrics: RunMetrics
    #: full telemetry capture of the sweep; ``metrics``' counters are
    #: derived from it (RunMetricsSink), so replaying the trace must
    #: reproduce them exactly — see --verify-trace
    trace: Trace | None = None

    def to_table(self) -> str:
        table_rows = [
            [
                row.width,
                row.duration,
                row.heal_policy,
                row.n_snapshots,
                row.n_partitioned,
                row.n_dishonest,
                row.min_fraction,
                row.error_clean,
                row.error_scoped,
                row.recovery_occasions
                if row.recovery_occasions is not None
                else "-",
                "yes" if row.recovered else "NO",
            ]
            for row in self.rows
        ]
        return format_table(
            [
                "width",
                "duration",
                "heal",
                "snaps",
                "partitioned",
                "dishonest",
                "min frac",
                "|err| clean",
                "|err| scoped",
                "recovery",
                "recovered",
            ],
            table_rows,
            title=(
                f"Partition tolerance (N={self.config.n_nodes}, cut at "
                f"t={self.config.partition_start}, snapshots every "
                f"{self.config.period} ticks)"
            ),
            precision=3,
        )


def _honest(estimate: SnapshotEstimate) -> bool:
    """Does a during-partition estimate state its degradation honestly?"""
    return (
        estimate.degraded
        and estimate.reachable_fraction < 1.0
        and estimate.achieved_epsilon is not None
        and estimate.achieved_confidence is not None
    )


def _run_cell(
    config: PartitionSweepConfig,
    width: float,
    duration: int,
    heal_policy: str,
    seed: int,
    tracer: RecordingTracer,
) -> PartitionRow:
    """One sweep cell: a two-query session through one cut-and-heal cycle."""
    rng = np.random.default_rng(seed)
    n_nodes = config.n_nodes
    graph = OverlayGraph(power_law_topology(n_nodes, rng=rng), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("value",)), graph.nodes())
    values = {node: float(rng.normal(10.0, 2.0)) for node in graph.nodes()}
    for node, value in values.items():
        database.insert(node, {"value": value})

    origin = 0
    episode = PartitionEpisode(
        start=config.partition_start,
        duration=duration,
        fractions=(1.0 - width, width),
        name="cut",
    )
    plan = PartitionPlan(
        PartitionSchedule(episodes=(episode,)),
        rng=seed + 3,
        tracer=tracer,
        heal_policy=heal_policy,
    )
    bridge_fault_log(plan.log, tracer)
    cell_span = tracer.span(
        SPAN_PARTITION_CELL,
        time=0,
        width=width,
        duration=duration,
        heal_policy=heal_policy,
        seed=seed,
    )
    session = DigestSession(
        graph,
        database,
        origin,
        np.random.default_rng(seed + 2),
        tracer=tracer,
        partitions=plan,
    )
    expression = Expression("value")
    engine_config = EngineConfig(
        scheduler="all", evaluator="independent", period=config.period
    )
    # the SUM query gets the same *per-tuple* budget as the AVG query
    # (an absolute epsilon on a SUM over N tuples divides by N)
    for op, epsilon in (
        (AggregateOp.AVG, config.epsilon),
        (AggregateOp.SUM, config.epsilon * n_nodes),
    ):
        session.add_query(
            ContinuousQuery(
                Query(op, expression),
                Precision(
                    delta=epsilon,
                    epsilon=epsilon,
                    confidence=config.confidence,
                ),
                duration=config.horizon,
            ),
            config=engine_config,
        )

    n_snapshots = 0
    n_partitioned = 0
    n_dishonest = 0
    min_fraction = 1.0
    clean_errors: list[float] = []
    scoped_errors: list[float] = []
    #: per query: snapshot occasions seen since the heal, and the occasion
    #: index at which the query first came back non-degraded
    post_heal_occasions: dict[str, int] = {}
    recovered_at: dict[str, int] = {}
    for time in range(config.horizon):
        plan.step(time, graph)
        cut_open = plan.active
        reachable = plan.reachable(graph, origin)
        truth_scoped = float(
            np.mean([values[node] for node in reachable])
        )
        truth_clean = float(np.mean(list(values.values())))
        healed = not cut_open and time >= episode.end
        executed = session.step(time)
        for query_id, estimate in executed.items():
            n_snapshots += 1
            is_avg = query_id == "q0"
            if cut_open and len(reachable) < len(graph):
                n_partitioned += 1
                min_fraction = min(min_fraction, estimate.reachable_fraction)
                if not _honest(estimate):
                    n_dishonest += 1
                if is_avg:
                    scoped_errors.append(
                        abs(estimate.aggregate - truth_scoped)
                    )
            else:
                if is_avg:
                    clean_errors.append(abs(estimate.aggregate - truth_clean))
            if healed and query_id not in recovered_at:
                occasion = post_heal_occasions.get(query_id, 0) + 1
                post_heal_occasions[query_id] = occasion
                if not estimate.degraded:
                    recovered_at[query_id] = occasion

    query_ids = session.query_ids()
    recovered = all(query_id in recovered_at for query_id in query_ids)
    recovery_occasions = (
        max(recovered_at.values()) if recovered and recovered_at else None
    )
    if recovery_occasions is not None:
        cell_span.set(recovery_occasions=recovery_occasions)
    tracer.end(
        cell_span,
        time=config.horizon,
        n_snapshots=n_snapshots,
        n_partitioned=n_partitioned,
        n_dishonest=n_dishonest,
    )
    return PartitionRow(
        width=width,
        duration=duration,
        heal_policy=heal_policy,
        n_snapshots=n_snapshots,
        n_partitioned=n_partitioned,
        n_dishonest=n_dishonest,
        min_fraction=min_fraction,
        error_clean=float(np.mean(clean_errors)) if clean_errors else 0.0,
        error_scoped=float(np.mean(scoped_errors)) if scoped_errors else 0.0,
        recovery_occasions=recovery_occasions,
        recovered=recovered,
        faults=plan.log.counts(),
    )


def run(
    config: PartitionSweepConfig | None = None,
    seed: int = 0,
    tracer: RecordingTracer | None = None,
) -> PartitionSweepResult:
    """Run the width x duration x heal-policy sweep; deterministic in ``seed``.

    The sweep always runs traced: counters on the returned ``metrics`` are
    *derived* from the span stream by a
    :class:`~repro.obs.tracer.RunMetricsSink` (single source of truth),
    and the full trace is returned for export/verification.
    """
    config = config if config is not None else PartitionSweepConfig()
    if tracer is None:
        tracer = RecordingTracer(
            meta={"experiment": "partition_tolerance", "seed": seed}
        )
    rows: list[PartitionRow] = []
    metrics = RunMetrics()
    tracer.add_sink(RunMetricsSink(metrics))
    for i, width in enumerate(config.widths):
        for j, duration in enumerate(config.durations):
            for k, heal_policy in enumerate(config.heal_policies):
                cell_seed = seed + 10000 * i + 100 * j + 10 * k
                row = _run_cell(
                    config, width, duration, heal_policy, cell_seed, tracer
                )
                rows.append(row)
                # series stay hand-recorded: cell-indexed, not sim-timed
                metrics.series("min_reachable_fraction").record(
                    len(rows), row.min_fraction
                )
                metrics.series("dishonest_estimates").record(
                    len(rows), row.n_dishonest
                )
    return PartitionSweepResult(
        config=config, rows=rows, metrics=metrics, trace=tracer.trace()
    )


def smoke_config() -> PartitionSweepConfig:
    """Reduced sweep for CI: one width x one duration, both heal policies."""
    return PartitionSweepConfig(
        n_nodes=40,
        widths=(0.3,),
        durations=(12,),
        heal_policies=("repair", "passive"),
        horizon=60,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep for CI (1x1x2 grid, small overlay)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="export the sweep's JSONL telemetry trace to this path",
    )
    parser.add_argument(
        "--verify-trace",
        action="store_true",
        help="fail unless replayed-trace counters equal the live metrics",
    )
    args = parser.parse_args(argv)
    config = smoke_config() if args.smoke else PartitionSweepConfig()
    result = run(config, seed=args.seed)
    emit(result.to_table())
    # honesty gate: a cell with any silently-unscoped during-partition
    # estimate, or one that never returns to non-degraded after the heal,
    # fails the run
    dishonest = [row for row in result.rows if row.n_dishonest > 0]
    unrecovered = [
        row
        for row in result.rows
        if not row.recovered
        or (
            row.recovery_occasions is not None
            and row.recovery_occasions > config.recovery_bound
        )
    ]
    if dishonest:
        emit(f"DISHONEST CELLS: {len(dishonest)}")
        return 1
    if unrecovered:
        emit(f"UNRECOVERED CELLS: {len(unrecovered)}")
        return 1
    assert result.trace is not None
    if args.trace_out:
        path = export_trace(result.trace, args.trace_out)
        emit(
            f"\ntrace: {len(result.trace.spans)} spans, "
            f"{len(result.trace.events)} events -> {path}"
        )
    if args.verify_trace:
        mismatches = verify_trace_consistency(result.trace, result.metrics)
        if mismatches:
            emit("TRACE-COUNTER MISMATCH:")
            for mismatch in mismatches:
                emit(f"  {mismatch}")
            return 1
        emit("trace-vs-counters consistency: OK")
    return 0


if __name__ == "__main__":
    main()
