"""Shared experiment plumbing.

The paper's methodology (Section VI-A): simulate the workload's network,
pick a random node to issue the canonical continuous AVG query, run the
query for the full dataset duration, and measure snapshot-query counts,
sample counts and messages. :func:`run_continuous_query` is that loop;
:func:`build_instance` builds the workload; :func:`make_engine` maps the
paper's algorithm names (ALL/PRED-k x INDEP/RPT) onto engine
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.query import ContinuousQuery, Precision, Query
from repro.datasets.base import DatasetInstance
from repro.datasets.memory import MemoryConfig, MemoryDataset, MemoryInstance
from repro.datasets.temperature import TemperatureConfig, TemperatureDataset
from repro.db.aggregates import AggregateOp
from repro.errors import SimulationError
from repro.network.messaging import MessageLedger
from repro.obs.tracer import RecordingTracer, SinkTracer, Trace
from repro.sampling.operator import SamplerConfig
from repro.sim.metrics import RunMetrics

DATASETS = ("temperature", "memory")


def build_instance(
    dataset: str, scale: float = 1.0, seed: int = 0
) -> DatasetInstance:
    """Build a live workload instance by name, optionally scaled down."""
    if dataset == "temperature":
        config = TemperatureConfig()
        if scale < 1.0:
            config = config.scaled(scale)
        return TemperatureDataset(config, seed=seed).build()
    if dataset == "memory":
        config = MemoryConfig()
        if scale < 1.0:
            config = config.scaled(scale)
        return MemoryDataset(config, seed=seed).build()
    raise SimulationError(f"unknown dataset {dataset!r}; expected {DATASETS}")


def canonical_query(
    instance: DatasetInstance, precision: Precision, duration: int | None = None
) -> ContinuousQuery:
    """The paper's evaluation query: ``SELECT AVG(attribute) FROM R``."""
    return ContinuousQuery(
        query=Query(op=AggregateOp.AVG, expression=instance.expression),
        precision=precision,
        start_time=0,
        duration=duration if duration is not None else instance.n_steps,
    )


def make_engine(
    instance: DatasetInstance,
    precision: Precision,
    scheduler: str,
    evaluator: str,
    origin: int,
    seed: int,
    pred_points: int = 3,
    sampler_config: SamplerConfig | None = None,
    duration: int | None = None,
    tracer: SinkTracer | None = None,
) -> DigestEngine:
    """Engine for one of the paper's algorithm combinations.

    ``scheduler``: ``"all"`` or ``"pred"`` (with ``pred_points`` = the k of
    PRED-k); ``evaluator``: ``"independent"`` or ``"repeated"``.
    ``tracer`` (e.g. a :class:`~repro.obs.tracer.RecordingTracer` when the
    run's trace should be exported) is forwarded to the engine, which
    derives its counters from it.
    """
    continuous_query = canonical_query(instance, precision, duration)
    return DigestEngine(
        instance.graph,
        instance.database,
        continuous_query,
        origin=origin,
        rng=np.random.default_rng(seed),
        sampler_config=sampler_config,
        config=EngineConfig(
            scheduler=scheduler,
            evaluator=evaluator,
            pred_points=pred_points,
        ),
        tracer=tracer,
    )


@dataclass
class ExperimentRun:
    """Everything measured from one continuous-query run."""

    metrics: RunMetrics
    ledger: MessageLedger
    oracle_times: list[int] = field(default_factory=list)
    oracle_values: list[float] = field(default_factory=list)
    estimate_errors: list[float] = field(default_factory=list)
    #: full span/event capture when the engine ran with a RecordingTracer
    trace: Trace | None = None

    @property
    def snapshot_queries(self) -> int:
        return self.metrics.snapshot_queries

    @property
    def samples_total(self) -> int:
        return self.metrics.samples_total

    @property
    def samples_fresh(self) -> int:
        return self.metrics.samples_fresh

    @property
    def messages_total(self) -> int:
        return self.ledger.total

    def samples_per_query(self) -> float:
        if self.metrics.snapshot_queries == 0:
            return 0.0
        return self.metrics.samples_total / self.metrics.snapshot_queries

    def mean_absolute_error(self) -> float:
        if not self.estimate_errors:
            return 0.0
        return float(np.mean(self.estimate_errors))


def pick_origin(instance: DatasetInstance, seed: int) -> int:
    """A random querying node, protected from churn where churn exists."""
    rng = np.random.default_rng(seed ^ 0x5EED)
    nodes = instance.graph.nodes()
    origin = int(nodes[int(rng.integers(len(nodes)))])
    if isinstance(instance, MemoryInstance):
        instance.churn.protect(origin)
    return origin


def run_continuous_query(
    instance: DatasetInstance,
    engine: DigestEngine,
    n_steps: int | None = None,
    record_oracle: bool = False,
) -> ExperimentRun:
    """Drive the workload and the engine together for the query duration.

    With ``record_oracle=True`` the oracle aggregate is computed at every
    snapshot-query time and the estimate's absolute error recorded — the
    quantity the ``(epsilon, p)`` guarantee constrains.
    """
    steps = n_steps if n_steps is not None else instance.n_steps
    run = ExperimentRun(metrics=engine.metrics, ledger=engine.ledger)
    for time in range(steps):
        instance.step(time)
        estimate = engine.step(time)
        if estimate is not None and record_oracle:
            truth = instance.true_average()
            run.oracle_times.append(time)
            run.oracle_values.append(truth)
            run.estimate_errors.append(abs(estimate.aggregate - truth))
    if isinstance(engine.tracer, RecordingTracer):
        run.trace = engine.tracer.trace()
    return run
