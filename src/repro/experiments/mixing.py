"""Sampling-cost scaling (Theorem 4 and the measured per-sample cost).

Two measurements:

1. **Messages per sample** on paper-scale overlays — the paper reports 65
   messages/sample for the (mesh) weather network and 43 for the
   (power-law) SETI@HOME network. We reproduce the measurement: draw many
   samples through the operator and divide the ledger total.
2. **Scaling with network size** — Theorem 4 claims poly-logarithmic
   mixing time on power-law graphs. We sweep sizes, measure the empirical
   mixing time and the Theorem-3 bound, and report the ratio to
   ``log^4 N`` (bounded ratio = consistent with the theorem's shape).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.db.relation import P2PDatabase, Schema
from repro.experiments.report import format_table
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import mesh_topology, power_law_topology
from repro.obs.console import emit
from repro.sampling import mixing as mixing_mod
from repro.sampling.operator import SamplerConfig
from repro.sampling.pool import SamplePool
from repro.sampling.walker import WalkContext
from repro.sampling.weights import content_size_weights


def _build_world(
    topology: str, n_nodes: int, seed: int
) -> tuple[OverlayGraph, P2PDatabase]:
    rng = np.random.default_rng(seed)
    if topology == "mesh":
        edges = mesh_topology(n_nodes)
    else:
        edges = power_law_topology(n_nodes, rng=rng)
    graph = OverlayGraph(edges, n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(1 + int(rng.integers(0, 5))):
            database.insert(node, {"v": float(rng.normal(0, 1))})
    return graph, database


@dataclass
class MixingRow:
    topology: str
    n_nodes: int
    eigengap: float
    empirical_mix: int
    theorem3_bound: int
    messages_per_sample: float
    log4_ratio: float  # empirical_mix / log(N)^4


@dataclass
class MixingResult:
    rows: list[MixingRow]
    gamma: float

    def to_table(self) -> str:
        headers = [
            "topology",
            "N",
            "eigengap",
            "empirical tau",
            "Thm3 bound",
            "msgs/sample",
            "tau/log^4(N)",
        ]
        table_rows = [
            [
                row.topology,
                row.n_nodes,
                row.eigengap,
                row.empirical_mix,
                row.theorem3_bound,
                row.messages_per_sample,
                row.log4_ratio,
            ]
            for row in self.rows
        ]
        return format_table(
            headers,
            table_rows,
            title=f"Sampling-cost scaling (gamma={self.gamma})",
        )


def measure(
    topology: str,
    n_nodes: int,
    gamma: float = 0.05,
    n_samples: int = 200,
    seed: int = 0,
) -> MixingRow:
    """One (topology, size) measurement."""
    graph, database = _build_world(topology, n_nodes, seed)
    weight = content_size_weights(database)
    context = WalkContext.from_graph(graph, weight)
    matrix = mixing_mod.sparse_transition_matrix(
        context.offsets, context.targets, context.weights
    )
    gap = mixing_mod.eigengap_sparse(matrix)
    target = context.target_distribution()
    # empirical mixing from a fixed origin (node 0), sparse iteration
    distribution = np.zeros(context.n_nodes)
    distribution[context.compact_index(0)] = 1.0
    transpose = matrix.T.tocsr()
    empirical = 0
    for step in range(1, 200_000):
        distribution = transpose @ distribution
        if 0.5 * float(np.abs(distribution - target).sum()) <= gamma:
            empirical = step
            break
    positive = context.weights[context.weights > 0]
    p_min = float(positive.min() / context.weights.sum())
    bound = mixing_mod.mixing_time_bound(gap, p_min, gamma)

    rng = np.random.default_rng(seed + 1)
    ledger = MessageLedger()
    operator = SamplePool(
        graph, rng, ledger, SamplerConfig(gamma=gamma)
    ).operator
    operator.sample_tuples(database, n_samples, origin=0)
    per_sample = ledger.total / n_samples
    return MixingRow(
        topology=topology,
        n_nodes=n_nodes,
        eigengap=gap,
        empirical_mix=empirical,
        theorem3_bound=bound,
        messages_per_sample=per_sample,
        log4_ratio=empirical / math.log(n_nodes) ** 4,
    )


def run(
    sizes: tuple[int, ...] = (128, 256, 512, 1024),
    topologies: tuple[str, ...] = ("power_law", "mesh"),
    gamma: float = 0.05,
    seed: int = 0,
) -> MixingResult:
    rows = [
        measure(topology, size, gamma=gamma, seed=seed)
        for topology in topologies
        for size in sizes
    ]
    return MixingResult(rows=rows, gamma=gamma)


def paper_scale_costs(seed: int = 0) -> dict[str, float]:
    """Messages/sample at the paper's network sizes (paper: 65 and 43)."""
    mesh = measure("mesh", 530, seed=seed)
    power = measure("power_law", 820, seed=seed)
    return {
        "mesh_530": mesh.messages_per_sample,
        "power_law_820": power.messages_per_sample,
    }


def main() -> None:
    result = run()
    emit(result.to_table())
    costs = paper_scale_costs()
    emit(
        f"\nPaper-scale per-sample cost: mesh(530) = "
        f"{costs['mesh_530']:.0f} msgs (paper: 65), power-law(820) = "
        f"{costs['power_law_820']:.0f} msgs (paper: 43)"
    )


if __name__ == "__main__":
    main()
