"""Protocol-level validation of the sampling layer.

Two questions the abstract (matrix-based) simulation cannot answer by
construction:

1. **Agreement** — do walks executed as real message exchanges sample the
   distribution the transition matrix predicts? Measured as the total
   variation between the protocol-executed empirical distribution and the
   target, for both protocol variants.
2. **Cost-model bracketing** — the abstract model charges exactly one
   message per proposal. The bounce protocol pays one extra message per
   rejection; the cached protocol pays nothing for rejections but
   advertises weights. Measured per-walk message costs should satisfy

       cached (steady state)  <=  abstract  <=  bounce
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import format_table
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import power_law_topology
from repro.obs.console import emit
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler
from repro.sampling.metropolis import stationary_distribution
from repro.sampling.mixing import total_variation
from repro.sampling.weights import WeightFunction, table_weights
from repro.sim.engine import SimulationEngine


@dataclass
class ProtocolRow:
    variant: str
    tv_distance: float
    walk_messages_per_walk: float
    return_messages_per_walk: float
    control_messages: int
    bounces: int


@dataclass
class ProtocolResult:
    n_nodes: int
    n_walks: int
    walk_length: int
    abstract_messages_per_walk: float
    rows: list[ProtocolRow]

    def to_table(self) -> str:
        table_rows = [
            [
                row.variant,
                row.tv_distance,
                row.walk_messages_per_walk,
                row.return_messages_per_walk,
                row.control_messages,
                row.bounces,
            ]
            for row in self.rows
        ]
        table_rows.append(
            ["abstract model", "-", self.abstract_messages_per_walk, "-", 0, 0]
        )
        return format_table(
            [
                "variant",
                "TV vs target",
                "walk msgs/walk",
                "return msgs/walk",
                "control msgs",
                "bounces",
            ],
            table_rows,
            title=(
                f"Protocol-level validation (N={self.n_nodes}, "
                f"{self.n_walks} walks x {self.walk_length} steps)"
            ),
            precision=4,
        )


def _world(n_nodes: int, seed: int) -> tuple[OverlayGraph, WeightFunction]:
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(power_law_topology(n_nodes, rng=rng), n_nodes=n_nodes)
    weights = {
        node: float(1 + rng.integers(1, 6)) for node in graph.nodes()
    }
    return graph, table_weights(weights)


def run(
    n_nodes: int = 60,
    n_walks: int = 4000,
    walk_length: int = 120,
    seed: int = 0,
) -> ProtocolResult:
    graph, weight = _world(n_nodes, seed)
    _, target = stationary_distribution(graph, weight)
    node_index = {node: i for i, node in enumerate(graph.nodes())}

    rows = []
    for variant in ("bounce", "cached"):
        simulation = SimulationEngine()
        ledger = MessageLedger()
        sampler = ProtocolSampler(
            graph,
            weight,
            simulation,
            np.random.default_rng(seed + 1),
            ledger,
            ProtocolConfig(variant=variant),
        )
        sampled = sampler.run_walks(origin=0, n=n_walks, walk_length=walk_length)
        counts = np.zeros(len(node_index))
        for node in sampled:
            counts[node_index[node]] += 1
        empirical = counts / counts.sum()
        rows.append(
            ProtocolRow(
                variant=variant,
                tv_distance=total_variation(empirical, target),
                walk_messages_per_walk=ledger.walk_steps / n_walks,
                return_messages_per_walk=ledger.sample_returns / n_walks,
                control_messages=ledger.control,
                bounces=sampler.bounces,
            )
        )

    # the abstract model: one message per non-lazy proposal
    from repro.sampling.walker import WalkContext, batch_walk

    context = WalkContext.from_graph(graph, weight)
    abstract_ledger = MessageLedger()
    batch_walk(
        context,
        np.zeros(n_walks, dtype=np.int64),
        walk_length,
        np.random.default_rng(seed + 2),
        abstract_ledger,
    )
    return ProtocolResult(
        n_nodes=n_nodes,
        n_walks=n_walks,
        walk_length=walk_length,
        abstract_messages_per_walk=abstract_ledger.walk_steps / n_walks,
        rows=rows,
    )


def main() -> None:
    emit(run().to_table())


if __name__ == "__main__":
    main()
