"""Sampling-time-scale robustness (the paper's future-work item 3).

Digest's analysis assumes each sampling occasion is instantaneous
relative to the data ("the network can be assumed almost static during
each sampling occasion", Section II); the paper flags the regime where
data changes on the sampling time-scale as an open problem (Section
VIII). This experiment makes the failure measurable and tests a simple
mitigation:

* an occasion is *stretched* over ``L`` world steps: ``n/L`` samples are
  drawn at each step while the data keeps changing;
* the naive estimator averages all samples regardless of when they were
  drawn — it estimates the aggregate's *time-average* over the window,
  which lags the end-of-window truth;
* the *detrended* estimator fits a line to ``(collection step, value)``
  and reports the fitted value at the window end — first-order drift
  correction using information the sampler already has (each sample's
  timestamp).

Expected shape: naive error grows with ``L`` once the window's aggregate
drift passes the confidence budget; detrending suppresses the linear
component of that growth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.experiments.report import format_table
from repro.obs.console import emit
from repro.sampling.operator import SamplerConfig
from repro.sampling.pool import SamplePool

if TYPE_CHECKING:
    from repro.db.relation import P2PDatabase
    from repro.network.graph import OverlayGraph


@dataclass
class DriftRow:
    window: int
    naive_mae: float
    detrended_mae: float
    truth_drift: float  # mean |X(end) - X(start)| over the windows


@dataclass
class DriftResult:
    dataset: str
    n_samples: int
    rows: list[DriftRow]

    def to_table(self) -> str:
        return format_table(
            [
                "occasion length L",
                "naive MAE",
                "detrended MAE",
                "mean truth drift",
            ],
            [
                [row.window, row.naive_mae, row.detrended_mae, row.truth_drift]
                for row in self.rows
            ],
            title=(
                f"Occasion-drift robustness ({self.dataset}, "
                f"{self.n_samples} samples per occasion)"
            ),
            precision=4,
        )


def detrended_estimate(times: np.ndarray, values: np.ndarray, at: float) -> float:
    """OLS line through ``(time, value)`` evaluated at ``at``.

    Falls back to the plain mean when the window is degenerate (single
    step) or the slope is undefined.
    """
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        raise ValueError("no samples")
    spread = times - times.mean()
    denominator = float((spread**2).sum())
    if denominator == 0.0:
        return float(values.mean())
    slope = float((spread * (values - values.mean())).sum()) / denominator
    return float(values.mean() + slope * (at - times.mean()))


def _drifting_world(
    n_nodes: int, per_node: int, rng: np.random.Generator
) -> tuple[OverlayGraph, P2PDatabase, list[int]]:
    """A world whose aggregate drifts *linearly* — the worst, and
    clearest, case for occasion-spanning sampling."""
    from repro.db.relation import P2PDatabase, Schema
    from repro.network.graph import OverlayGraph
    from repro.network.topology import power_law_topology

    graph = OverlayGraph(power_law_topology(n_nodes, rng=rng), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    tuple_ids = []
    for node in graph.nodes():
        for _ in range(per_node):
            tuple_ids.append(
                database.insert(node, {"v": float(rng.normal(50, 6))})
            )
    return graph, database, tuple_ids


def run(
    drift_rate: float = 0.5,
    windows: tuple[int, ...] = (1, 2, 4, 8, 16),
    n_samples: int = 120,
    occasions: int = 12,
    n_nodes: int = 120,
    seed: int = 0,
) -> DriftResult:
    """Stretched-occasion estimation error vs occasion length ``L``.

    Every tuple drifts by ``drift_rate`` per step (plus noise), so the
    end-of-window truth leads the window's time-average by
    ``~ drift_rate * (L-1) / 2`` — the lag the naive estimator inherits
    and the detrended estimator removes.
    """
    from repro.db.expression import Expression

    rows = []
    expression = Expression("v")
    for window in windows:
        rng = np.random.default_rng(seed)
        graph, database, tuple_ids = _drifting_world(n_nodes, 4, rng)
        operator = SamplePool(
            graph, np.random.default_rng(seed + window)
        ).operator
        naive_errors = []
        detrended_errors = []
        drifts = []
        per_step = max(1, n_samples // window)
        for _ in range(occasions):
            sample_times: list[int] = []
            sample_values: list[float] = []
            start_truth = float(database.exact_values(expression).mean())
            for offset in range(window):
                for tuple_id in tuple_ids:
                    current = database.read(tuple_id)["v"]
                    database.update(
                        tuple_id,
                        {"v": current + drift_rate + float(rng.normal(0, 0.2))},
                    )
                samples = operator.sample_tuples(database, per_step, origin=0)
                sample_times.extend([offset] * len(samples))
                sample_values.extend(expression.evaluate(s.row) for s in samples)
            truth_end = float(database.exact_values(expression).mean())
            times_array = np.array(sample_times, dtype=float)
            values_array = np.array(sample_values, dtype=float)
            naive = float(values_array.mean())
            detrended = detrended_estimate(
                times_array, values_array, at=float(times_array.max())
            )
            naive_errors.append(abs(naive - truth_end))
            detrended_errors.append(abs(detrended - truth_end))
            drifts.append(abs(truth_end - start_truth))
        rows.append(
            DriftRow(
                window=window,
                naive_mae=float(np.mean(naive_errors)),
                detrended_mae=float(np.mean(detrended_errors)),
                truth_drift=float(np.mean(drifts)),
            )
        )
    return DriftResult(dataset="linear-drift", n_samples=n_samples, rows=rows)


def main() -> None:
    emit(run().to_table())


if __name__ == "__main__":
    main()
