"""Figure 4-a: effect of the extrapolation algorithm.

Methodology (Section VI-B1): TEMPERATURE dataset, fixed confidence
(epsilon = 2, p = 0.95), vary the resolution ``delta`` (normalized by the
dataset sigma), and count the snapshot queries each continual-querying
algorithm executes: the naive ``ALL`` versus ``PRED-k`` for several ``k``.

Expected shape: PRED-k ~= ALL for small ``delta/sigma`` (nothing can be
skipped), large reductions (paper: up to ~75%) as ``delta/sigma``
approaches 1, and near-coincident curves across k.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Precision
from repro.experiments.harness import (
    build_instance,
    make_engine,
    pick_origin,
    run_continuous_query,
)
from repro.experiments.report import format_table
from repro.obs.console import emit

DEFAULT_RATIOS = (0.05, 0.125, 0.25, 0.5, 1.0, 2.0)
DEFAULT_PRED_KS = (2, 3, 4)


@dataclass
class Fig4aResult:
    """One row per delta/sigma ratio; one column per algorithm."""

    dataset: str
    sigma: float
    ratios: list[float]
    algorithms: list[str]
    snapshot_queries: dict[str, list[int]]  # algorithm -> per-ratio counts
    total_steps: int

    def reduction_vs_all(self, algorithm: str, ratio_index: int) -> float:
        """Fractional snapshot-query reduction vs ALL at one ratio."""
        all_count = self.snapshot_queries["ALL"][ratio_index]
        if all_count == 0:
            return 0.0
        return 1.0 - self.snapshot_queries[algorithm][ratio_index] / all_count

    def to_table(self) -> str:
        headers = ["delta/sigma"] + self.algorithms
        rows = []
        for index, ratio in enumerate(self.ratios):
            rows.append(
                [ratio]
                + [self.snapshot_queries[a][index] for a in self.algorithms]
            )
        return format_table(
            headers,
            rows,
            title=(
                f"Figure 4-a ({self.dataset}, {self.total_steps} steps): "
                "snapshot queries vs delta/sigma"
            ),
        )


def run(
    dataset: str = "temperature",
    scale: float = 0.1,
    seed: int = 0,
    epsilon: float = 2.0,
    confidence: float = 0.95,
    ratios: tuple[float, ...] = DEFAULT_RATIOS,
    pred_ks: tuple[int, ...] = DEFAULT_PRED_KS,
) -> Fig4aResult:
    """Run the Figure 4-a sweep and return the per-algorithm counts."""
    probe = build_instance(dataset, scale, seed)
    sigma = probe.config.expected_sigma  # type: ignore[attr-defined]
    algorithms = ["ALL"] + [f"PRED{k}" for k in pred_ks]
    counts: dict[str, list[int]] = {name: [] for name in algorithms}
    steps = probe.n_steps
    for ratio in ratios:
        precision = Precision(
            delta=ratio * sigma, epsilon=epsilon, confidence=confidence
        )
        for name in algorithms:
            instance = build_instance(dataset, scale, seed)
            origin = pick_origin(instance, seed)
            if name == "ALL":
                engine = make_engine(
                    instance, precision, "all", "repeated", origin, seed
                )
            else:
                k = int(name[4:])
                engine = make_engine(
                    instance,
                    precision,
                    "pred",
                    "repeated",
                    origin,
                    seed,
                    pred_points=k,
                )
            run_result = run_continuous_query(instance, engine)
            counts[name].append(run_result.snapshot_queries)
    return Fig4aResult(
        dataset=dataset,
        sigma=sigma,
        ratios=list(ratios),
        algorithms=algorithms,
        snapshot_queries=counts,
        total_steps=steps,
    )


def main() -> None:
    from repro.experiments.plotting import ascii_chart

    result = run()
    emit(result.to_table())
    emit()
    emit(
        ascii_chart(
            {
                algorithm: (result.ratios, result.snapshot_queries[algorithm])
                for algorithm in result.algorithms
            },
            title="Figure 4-a: snapshot queries vs delta/sigma",
            x_label="delta/sigma",
            y_label="snapshot queries",
        )
    )
    last = len(result.ratios) - 1
    for algorithm in result.algorithms[1:]:
        emit(
            f"{algorithm} reduction vs ALL at delta/sigma="
            f"{result.ratios[last]}: "
            f"{100 * result.reduction_vs_all(algorithm, last):.0f}%"
        )


if __name__ == "__main__":
    main()
