"""Figure 5-a: overall efficiency of Digest (combined effect).

Methodology (Section VI-B3): for the query ``delta/sigma = 1``,
``epsilon/sigma = 0.25``, ``p = 0.95``, measure the *total number of
samples* for the four algorithm combinations (ALL + INDEP), (ALL + RPT),
(PRED3 + INDEP), (PRED3 + RPT = Digest).

Expected shape: Digest cheapest; ALL+INDEP most expensive; the two
optimizations compose roughly multiplicatively (paper: up to ~3.2x = 320%
on TEMPERATURE).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.query import Precision
from repro.experiments.harness import (
    build_instance,
    make_engine,
    pick_origin,
    run_continuous_query,
)
from repro.experiments.report import format_table
from repro.obs.console import emit

COMBINATIONS = (
    ("ALL+INDEP", "all", "independent"),
    ("ALL+RPT", "all", "repeated"),
    ("PRED3+INDEP", "pred", "independent"),
    ("PRED3+RPT", "pred", "repeated"),
)


@dataclass
class Fig5aResult:
    dataset: str
    sigma: float
    totals: dict[str, int]  # combination -> total samples
    fresh: dict[str, int]  # combination -> fresh samples
    queries: dict[str, int]  # combination -> snapshot queries

    @property
    def digest_vs_naive(self) -> float:
        """``(ALL+INDEP) / (PRED3+RPT)`` total-sample ratio (paper: ~3.2)."""
        digest = self.totals["PRED3+RPT"]
        return self.totals["ALL+INDEP"] / digest if digest else float("inf")

    @property
    def rpt_improvement(self) -> float:
        """``I = n_indep / n_rpt`` per snapshot query under ALL scheduling."""
        indep = self.totals["ALL+INDEP"] / max(1, self.queries["ALL+INDEP"])
        rpt = self.totals["ALL+RPT"] / max(1, self.queries["ALL+RPT"])
        return indep / rpt if rpt else float("inf")

    def to_table(self) -> str:
        headers = [
            "combination",
            "snapshot queries",
            "total samples",
            "fresh samples",
        ]
        rows = [
            [name, self.queries[name], self.totals[name], self.fresh[name]]
            for name, _, _ in COMBINATIONS
        ]
        return format_table(
            headers,
            rows,
            title=f"Figure 5-a ({self.dataset}): total samples per combination",
        )


def run(
    dataset: str = "temperature",
    scale: float = 0.1,
    seed: int = 0,
    delta_ratio: float = 1.0,
    epsilon_ratio: float = 0.25,
    confidence: float = 0.95,
) -> Fig5aResult:
    probe = build_instance(dataset, scale, seed)
    sigma = probe.config.expected_sigma  # type: ignore[attr-defined]
    precision = Precision(
        delta=delta_ratio * sigma,
        epsilon=epsilon_ratio * sigma,
        confidence=confidence,
    )
    totals: dict[str, int] = {}
    fresh: dict[str, int] = {}
    queries: dict[str, int] = {}
    for name, scheduler, evaluator in COMBINATIONS:
        instance = build_instance(dataset, scale, seed)
        origin = pick_origin(instance, seed)
        engine = make_engine(
            instance, precision, scheduler, evaluator, origin, seed
        )
        run_result = run_continuous_query(instance, engine)
        totals[name] = run_result.samples_total
        fresh[name] = run_result.samples_fresh
        queries[name] = run_result.snapshot_queries
    return Fig5aResult(
        dataset=dataset, sigma=sigma, totals=totals, fresh=fresh, queries=queries
    )


def main() -> None:
    for dataset in ("temperature", "memory"):
        result = run(dataset=dataset)
        emit(result.to_table())
        emit(
            f"{dataset}: Digest vs naive total-sample ratio = "
            f"{result.digest_vs_naive:.2f}x "
            f"(paper: up to 3.2x on TEMPERATURE)\n"
        )


if __name__ == "__main__":
    main()
