"""Multi-query amortization: one session vs. independent engines.

The paper frames sampling as a shared database operator (Section III)
precisely so that co-resident queries can amortize its cost; this
experiment quantifies that. ``n`` continuous AVG queries with overlapping
precision demands run two ways over the identical workload:

* **shared** — one :class:`~repro.core.session.DigestSession`: queries
  lease from one :class:`~repro.sampling.pool.SamplePool`, and co-due
  occasions coalesce their walk demands into shared batches (the batch
  needs the *maximum* demand, not the sum);
* **solo** — ``n`` separate :class:`~repro.core.engine.DigestEngine`\\ s,
  each paying for its own walks, over identically-seeded copies of the
  workload.

Reported: messages per query under both regimes (the headline is the
savings ratio), the pool hit rate, and — because cheaper must not mean
wrong — each query's own empirical ``(epsilon, p)`` hit rate against the
oracle aggregate.
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.engine import DigestEngine, EngineConfig
from repro.core.query import ContinuousQuery, Precision, Query
from repro.core.session import DigestSession
from repro.db.aggregates import AggregateOp
from repro.experiments.harness import build_instance, pick_origin
from repro.experiments.report import format_table
from repro.obs.console import emit

#: default overlapping precision demands, as multiples of the workload sigma
DEFAULT_EPSILON_RATIOS = (0.20, 0.25, 0.30, 0.35)


@dataclass
class QueryOutcome:
    """One query's cost and accuracy under the shared session."""

    query_id: str
    epsilon: float
    snapshots: int
    hits: int
    samples: int
    pool_hits: int

    @property
    def coverage(self) -> float:
        return self.hits / self.snapshots if self.snapshots else 0.0


@dataclass
class MultiQueryResult:
    """Shared-session vs. solo-engines comparison over one workload."""

    dataset: str
    n_queries: int
    steps: int
    confidence: float
    shared_messages: int
    solo_messages: int
    pool_hits: int
    pool_misses: int
    batches_coalesced: int
    outcomes: list[QueryOutcome] = field(default_factory=list)

    @property
    def shared_messages_per_query(self) -> float:
        return self.shared_messages / self.n_queries if self.n_queries else 0.0

    @property
    def solo_messages_per_query(self) -> float:
        return self.solo_messages / self.n_queries if self.n_queries else 0.0

    @property
    def message_savings(self) -> float:
        """Fraction of per-query messages saved by sharing (0..1)."""
        if self.solo_messages == 0:
            return 0.0
        return 1.0 - self.shared_messages / self.solo_messages

    @property
    def pool_hit_rate(self) -> float:
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    def to_json_dict(
        self, wall_clock_seconds: float | None = None
    ) -> dict[str, object]:
        """Machine-readable summary (the BENCH_multi_query.json payload)."""
        payload: dict[str, object] = {
            "dataset": self.dataset,
            "n_queries": self.n_queries,
            "steps": self.steps,
            "confidence": self.confidence,
            "messages_shared_total": self.shared_messages,
            "messages_solo_total": self.solo_messages,
            "messages_per_query_shared": self.shared_messages_per_query,
            "messages_per_query_solo": self.solo_messages_per_query,
            "message_savings": self.message_savings,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "pool_hit_rate": self.pool_hit_rate,
            "batches_coalesced": self.batches_coalesced,
            "queries": [
                {
                    "query_id": outcome.query_id,
                    "epsilon": outcome.epsilon,
                    "snapshots": outcome.snapshots,
                    "coverage": outcome.coverage,
                    "samples": outcome.samples,
                    "pool_hits": outcome.pool_hits,
                }
                for outcome in self.outcomes
            ],
        }
        if wall_clock_seconds is not None:
            payload["wall_clock_seconds"] = wall_clock_seconds
        return payload

    def to_table(self) -> str:
        rows = [
            [
                outcome.query_id,
                f"{outcome.epsilon:.3f}",
                outcome.snapshots,
                f"{outcome.coverage:.3f}",
                outcome.samples,
                outcome.pool_hits,
            ]
            for outcome in self.outcomes
        ]
        per_query = format_table(
            ["query", "epsilon", "snapshots", "coverage", "samples", "pool hits"],
            rows,
            title=(
                f"Per-query outcomes ({self.dataset}, {self.n_queries} "
                f"queries, p={self.confidence:g})"
            ),
        )
        summary = format_table(
            ["quantity", "value"],
            [
                ["messages/query (shared)", f"{self.shared_messages_per_query:.0f}"],
                ["messages/query (solo)", f"{self.solo_messages_per_query:.0f}"],
                ["message savings", f"{self.message_savings:.1%}"],
                ["pool hit rate", f"{self.pool_hit_rate:.1%}"],
                ["coalesced batches", self.batches_coalesced],
            ],
            title="Shared session vs independent engines",
        )
        return per_query + "\n\n" + summary


def _precisions(
    sigma: float, epsilon_ratios: tuple[float, ...], confidence: float
) -> list[Precision]:
    return [
        Precision(delta=sigma, epsilon=ratio * sigma, confidence=confidence)
        for ratio in epsilon_ratios
    ]


def run(
    dataset: str = "temperature",
    scale: float = 0.08,
    seed: int = 0,
    epsilon_ratios: tuple[float, ...] = DEFAULT_EPSILON_RATIOS,
    confidence: float = 0.95,
    evaluator: str = "independent",
    steps: int | None = None,
) -> MultiQueryResult:
    """Run the shared-vs-solo comparison; see the module docstring.

    All queries use the ALL scheduler so every occasion is co-due — the
    regime the coalescing is built for (PRED queries overlap only when
    their predicted update times collide).
    """
    probe = build_instance(dataset, scale, seed)
    sigma = probe.config.expected_sigma  # type: ignore[attr-defined]
    precisions = _precisions(sigma, epsilon_ratios, confidence)
    config = EngineConfig(scheduler="all", evaluator=evaluator)

    # shared: one session, all queries leasing from one pool
    instance = build_instance(dataset, scale, seed)
    origin = pick_origin(instance, seed)
    n_steps = min(steps, instance.n_steps) if steps else instance.n_steps
    session = DigestSession(
        instance.graph,
        instance.database,
        origin,
        np.random.default_rng(seed + 1),
    )
    qids = [
        session.add_query(
            ContinuousQuery(
                Query(AggregateOp.AVG, instance.expression),
                precision,
                duration=n_steps,
            ),
            config=config,
        )
        for precision in precisions
    ]
    outcomes = {
        qid: QueryOutcome(
            query_id=qid,
            epsilon=precision.epsilon,
            snapshots=0,
            hits=0,
            samples=0,
            pool_hits=0,
        )
        for qid, precision in zip(qids, precisions)
    }
    for time in range(n_steps):
        instance.step(time)
        executed = session.step(time)
        if not executed:
            continue
        truth = instance.true_average()
        for qid, estimate in executed.items():
            outcome = outcomes[qid]
            outcome.snapshots += 1
            outcome.hits += abs(estimate.aggregate - truth) <= outcome.epsilon
            outcome.samples += estimate.n_total
    for qid in qids:
        outcomes[qid].pool_hits = session.runtime(qid).metrics.pool_hits
    shared_messages = session.ledger.total

    # solo: one engine per query over identically-seeded workload copies
    solo_messages = 0
    for index, precision in enumerate(precisions):
        instance = build_instance(dataset, scale, seed)
        origin = pick_origin(instance, seed)
        engine = DigestEngine(
            instance.graph,
            instance.database,
            ContinuousQuery(
                Query(AggregateOp.AVG, instance.expression),
                precision,
                duration=n_steps,
            ),
            origin=origin,
            rng=np.random.default_rng(seed + 1 + 1000 * (index + 1)),
            config=config,
        )
        for time in range(n_steps):
            instance.step(time)
            engine.step(time)
        solo_messages += engine.ledger.total

    return MultiQueryResult(
        dataset=dataset,
        n_queries=len(precisions),
        steps=n_steps,
        confidence=confidence,
        shared_messages=shared_messages,
        solo_messages=solo_messages,
        pool_hits=session.pool.pool_hits,
        pool_misses=session.pool.pool_misses,
        batches_coalesced=session.batches_coalesced,
        outcomes=[outcomes[qid] for qid in qids],
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Shared multi-query session vs. independent engines"
    )
    parser.add_argument("--dataset", default="temperature")
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument(
        "--json-out",
        default=None,
        metavar="PATH",
        help="write the machine-readable summary (BENCH_multi_query.json)",
    )
    args = parser.parse_args(argv)
    start = time.perf_counter()
    result = run(
        dataset=args.dataset,
        scale=args.scale,
        seed=args.seed,
        steps=args.steps,
    )
    wall_clock = time.perf_counter() - start
    emit(result.to_table())
    emit(
        f"\n{result.n_queries} co-resident queries pay "
        f"{result.message_savings:.0%} fewer messages per query than "
        f"independent engines"
    )
    if args.json_out:
        payload = result.to_json_dict(wall_clock_seconds=wall_clock)
        path = Path(args.json_out)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        emit(f"wrote {path}")


if __name__ == "__main__":
    main()
