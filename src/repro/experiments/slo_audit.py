"""Online guarantee auditing: do the right alerts fire, and only then?

The paper's contract is live — at every update time the estimate must
satisfy ``|X̂ − X| <= ε`` with probability ``p`` — and PR 8 added the ops
layer that judges it live: the streaming pipeline
(:mod:`repro.obs.live`), the alert engine (:mod:`repro.obs.alerts`) and
the per-query guarantee auditor (:mod:`repro.obs.audit`). This sweep
gates that machinery end to end:

* each cell runs one multi-query :class:`~repro.core.session.
  DigestSession` under one per-walk message-loss rate, with the live
  pipeline attached and the default alert rules loaded;
* a **clean** cell (loss 0) must fire *no* alerts — a noisy alerting
  layer is worse than none;
* a **faulted** cell must fire both the degraded-snapshot threshold
  alert and the guarantee burn-rate alert — a silent alerting layer is
  worse still;
* every cell must replay exactly: counters
  (:func:`~repro.obs.analysis.verify_trace_consistency`) *and* alert
  transitions (:func:`~repro.obs.alerts.verify_alert_replay`) re-derived
  from the exported trace must equal what happened live.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from repro.core.query import ContinuousQuery, Precision, Query
from repro.core.session import DigestSession, EngineConfig
from repro.db.aggregates import AggregateOp
from repro.db.expression import Expression
from repro.db.relation import P2PDatabase, Schema
from repro.experiments.report import format_table
from repro.network.faults import FaultConfig, FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.topology import mesh_topology
from repro.obs.alerts import (
    ABSENCE,
    BURN_RATE,
    FIRING,
    THRESHOLD,
    AlertRule,
    load_rules,
    verify_alert_replay,
)
from repro.obs.analysis import verify_trace_consistency
from repro.obs.console import emit
from repro.obs.export import export_trace
from repro.obs.live import WindowConfig
from repro.obs.tracer import RecordingTracer, Trace

#: rule names the faulted-cell gate requires to fire
GATED_RULES = ("degraded-snapshots", "guarantee-burn")


@dataclass(frozen=True)
class SloSweepConfig:
    """Shape of the sweep (sizes chosen so full mode runs in seconds)."""

    n_nodes: int = 36
    per_node: int = 5
    steps: int = 60
    n_queries: int = 2
    epsilon: float = 0.8
    confidence: float = 0.85
    loss_rates: tuple[float, ...] = (0.0, 0.20)
    window_width: int = 10
    slide: int = 3


def default_rules() -> list[AlertRule]:
    """The sweep's rule set, one of each kind the engine supports.

    Thresholds page on *sustained* contract failure, not on the
    occasional honest degradation a clean ratio estimator produces when
    its bounded top-up rounds leave residual variance: a clean run sits
    well under half its windows degraded and within ~2x budget burn,
    while a lossy run pins both signals high for the whole horizon.
    """
    return [
        AlertRule(
            name="degraded-snapshots",
            signal="degraded_fraction",
            kind=THRESHOLD,
            threshold=0.5,
            comparison=">",
            for_windows=2,
        ),
        AlertRule(
            name="guarantee-burn",
            signal="audit_burn_rate",
            kind=BURN_RATE,
            threshold=2.0,
            comparison=">",
            for_windows=2,
        ),
        AlertRule(
            name="walk-failure-surge",
            signal="walk_failure_fraction",
            kind=THRESHOLD,
            threshold=0.5,
            comparison=">",
            for_windows=2,
        ),
        AlertRule(
            name="snapshots-absent",
            signal="snapshot_count",
            kind=ABSENCE,
            for_windows=3,
        ),
    ]


@dataclass
class SloCell:
    """Measurements for one message-loss cell."""

    message_loss: float
    snapshots: int
    degraded: int
    alerts_fired: int
    alerts_resolved: int
    fired_rules: list[str]
    worst_burn_rate: float
    verdicts_ok: int
    verdicts_total: int
    ops_counts: dict[str, int]
    consistency_mismatches: list[str]
    replay_mismatches: list[str]
    trace: Trace


@dataclass
class SloSweepResult:
    config: SloSweepConfig
    rules: list[AlertRule]
    cells: list[SloCell] = field(default_factory=list)

    def to_table(self) -> str:
        rows = [
            [
                cell.message_loss,
                cell.snapshots,
                cell.degraded,
                cell.alerts_fired,
                cell.alerts_resolved,
                ",".join(cell.fired_rules) or "-",
                cell.worst_burn_rate,
                f"{cell.verdicts_ok}/{cell.verdicts_total}",
            ]
            for cell in self.cells
        ]
        return format_table(
            [
                "loss",
                "snapshots",
                "degraded",
                "fired",
                "resolved",
                "fired rules",
                "worst burn",
                "slo ok",
            ],
            rows,
            title=(
                f"SLO audit sweep ({self.config.n_queries} queries, "
                f"eps={self.config.epsilon} p={self.config.confidence}, "
                f"window={self.config.window_width})"
            ),
            precision=3,
        )

    def gate_failures(self) -> list[str]:
        """Acceptance-gate violations (empty = the alerting layer works).

        Clean cells must stay silent; faulted cells must fire every
        :data:`GATED_RULES` entry; every cell must replay exactly.
        """
        problems: list[str] = []
        for cell in self.cells:
            label = f"loss={cell.message_loss}"
            if cell.message_loss == 0.0:
                if cell.alerts_fired or cell.alerts_resolved:
                    problems.append(
                        f"{label}: clean run fired alerts "
                        f"({cell.fired_rules})"
                    )
            else:
                missing = [
                    rule for rule in GATED_RULES if rule not in cell.fired_rules
                ]
                if missing:
                    problems.append(
                        f"{label}: faulted run never fired {missing} "
                        f"(fired: {cell.fired_rules or ['nothing']})"
                    )
            problems.extend(
                f"{label}: counter mismatch {line}"
                for line in cell.consistency_mismatches
            )
            problems.extend(
                f"{label}: alert replay mismatch {line}"
                for line in cell.replay_mismatches
            )
        return problems


def _run_cell(
    config: SloSweepConfig,
    message_loss: float,
    seed: int,
    rules: list[AlertRule],
) -> SloCell:
    """One cell: a live-audited multi-query session under one loss rate."""
    rng = np.random.default_rng(seed)
    graph = OverlayGraph(
        mesh_topology(config.n_nodes), n_nodes=config.n_nodes
    )
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(config.per_node):
            database.insert(node, {"v": float(rng.normal(50.0, 10.0))})
    plan = (
        FaultPlan(FaultConfig(message_loss=message_loss), rng=seed + 50)
        if message_loss > 0.0
        else None
    )
    tracer = RecordingTracer(
        meta={
            "experiment": "slo_audit",
            "seed": seed,
            "message_loss": message_loss,
        }
    )
    session = DigestSession(
        graph,
        database,
        origin=0,
        rng=np.random.default_rng(seed + 1),
        faults=plan,
        tracer=tracer,
    )
    window_config = WindowConfig(
        width=config.window_width, slide=config.slide
    )
    pipeline, engine = session.attach_live(rules, window_config)
    query_config = EngineConfig(scheduler="all", evaluator="independent")
    for _ in range(config.n_queries):
        session.add_query(
            ContinuousQuery(
                Query(AggregateOp.AVG, Expression("v")),
                Precision(
                    delta=config.epsilon,
                    epsilon=config.epsilon,
                    confidence=config.confidence,
                ),
                duration=config.steps,
            ),
            config=query_config,
        )
    for time in range(config.steps):
        session.step(time)
    session.finish_live(config.steps)

    trace = tracer.trace()
    fired_rules = sorted(
        {t.rule for t in engine.transitions if t.state == FIRING}
    )
    verdicts = session.auditor.verdicts()
    return SloCell(
        message_loss=message_loss,
        snapshots=session.metrics.snapshot_queries,
        degraded=session.metrics.degraded_estimates,
        alerts_fired=session.metrics.alerts_fired,
        alerts_resolved=session.metrics.alerts_resolved,
        fired_rules=fired_rules,
        worst_burn_rate=max(
            (v.burn_rate for v in verdicts.values()), default=0.0
        ),
        verdicts_ok=sum(1 for v in verdicts.values() if v.ok),
        verdicts_total=len(verdicts),
        ops_counts=engine.fault_log.counts(),
        consistency_mismatches=verify_trace_consistency(
            trace, session.metrics
        ),
        replay_mismatches=verify_alert_replay(trace, rules, window_config),
        trace=trace,
    )


def run(
    config: SloSweepConfig | None = None,
    seed: int = 0,
    rules: list[AlertRule] | None = None,
) -> SloSweepResult:
    """Run the loss sweep; deterministic in ``seed``."""
    config = config if config is not None else SloSweepConfig()
    rules = rules if rules is not None else default_rules()
    cells = [
        _run_cell(config, loss, seed + 1000 * index, rules)
        for index, loss in enumerate(config.loss_rates)
    ]
    return SloSweepResult(config=config, rules=rules, cells=cells)


def smoke_config() -> SloSweepConfig:
    """Reduced sweep for CI: smaller overlay, shorter horizon."""
    return SloSweepConfig(n_nodes=24, per_node=4, steps=40)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep for CI (smaller overlay, shorter horizon)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="PATH",
        help="JSON alert-rules file (defaults to the built-in rule set)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="export the faulted cell's JSONL telemetry trace to this path",
    )
    parser.add_argument(
        "--verify-trace",
        action="store_true",
        help=(
            "fail unless every cell's counters AND alert transitions "
            "replay exactly from its trace"
        ),
    )
    args = parser.parse_args(argv)
    config = smoke_config() if args.smoke else SloSweepConfig()
    rules = load_rules(args.rules) if args.rules else default_rules()
    result = run(config, seed=args.seed, rules=rules)
    emit(result.to_table())
    for cell in result.cells:
        if cell.ops_counts:
            emit(
                f"\nops log (loss={cell.message_loss}): "
                + ", ".join(
                    f"{kind}={count}"
                    for kind, count in cell.ops_counts.items()
                )
            )
    failures = result.gate_failures()
    if failures:
        emit("\nSLO AUDIT GATE FAILURES:")
        for failure in failures:
            emit(f"  {failure}")
        return 1
    emit("\nslo-audit gate: clean run silent, faulted run paged: OK")
    if args.trace_out:
        faulted = [c for c in result.cells if c.message_loss > 0.0]
        exported = (faulted or result.cells)[-1]
        path = export_trace(exported.trace, args.trace_out)
        emit(
            f"trace (loss={exported.message_loss}): "
            f"{len(exported.trace.spans)} spans, "
            f"{len(exported.trace.events)} events -> {path}"
        )
    if args.verify_trace:
        # the per-cell verifications already ran inside run(); the gate
        # above fails on any mismatch, so reaching here means they held
        emit("trace-vs-counters and alert-replay consistency: OK")
    return 0


if __name__ == "__main__":
    main()
