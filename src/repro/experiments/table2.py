"""Table II: dataset parameters — generator calibration check.

Builds each synthetic workload, advances it, and measures the quantities
Table II publishes for the real traces: tuple/unit/node counts, the
cross-sectional sigma, and the lag-1 correlation rho. At ``scale=1.0`` the
counts match the paper exactly by construction; rho and sigma must land
near the published values at any scale (they are calibration targets, not
scale-dependent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import lag1_correlation_matched
from repro.experiments.harness import build_instance
from repro.experiments.report import format_table
from repro.obs.console import emit

PAPER_ROWS = {
    "temperature": {
        "tuples": 8_640_000,
        "units": 8000,
        "nodes": 530,
        "rho": 0.89,
        "sigma": 8.0,
    },
    "memory": {
        "tuples": 95_445,
        "units": 1000,
        "nodes": 820,
        "rho": 0.68,
        "sigma": 10.0,
    },
}


@dataclass
class Table2Result:
    dataset: str
    scale: float
    measured_nodes: int
    measured_units: int
    measured_updates: int  # tuple-modification records over the run
    measured_rho: float
    measured_sigma: float
    paper_rho: float
    paper_sigma: float

    def to_table(self) -> str:
        headers = ["parameter", "paper", "measured"]
        paper = PAPER_ROWS[self.dataset]
        rows = [
            ["nodes", paper["nodes"], self.measured_nodes],
            ["units", paper["units"], self.measured_units],
            ["update records", paper["tuples"], self.measured_updates],
            ["rho (lag-1)", paper["rho"], round(self.measured_rho, 3)],
            ["sigma", paper["sigma"], round(self.measured_sigma, 3)],
        ]
        return format_table(
            headers,
            rows,
            title=f"Table II ({self.dataset}, scale={self.scale})",
        )


def run(dataset: str = "temperature", scale: float = 0.1, seed: int = 0,
        measure_steps: int | None = None) -> Table2Result:
    """Measure one dataset's calibration against its Table II row."""
    instance = build_instance(dataset, scale, seed)
    steps = measure_steps if measure_steps is not None else min(
        instance.n_steps, 80
    )
    rhos: list[float] = []
    sigmas: list[float] = []
    updates = 0
    previous = None
    for time in range(steps):
        instance.step(time)
        current = instance.current_values_by_id()
        updates += len(current)
        values = np.fromiter(current.values(), dtype=float)
        sigmas.append(float(values.std()))
        if previous is not None:
            # churn changes the tuple set between steps; pair by tuple id
            # so rho is measured over the surviving tuples only
            rhos.append(lag1_correlation_matched(previous, current))
        previous = current
    paper = PAPER_ROWS[dataset]
    n_units = (
        instance.n_units_live()
        if hasattr(instance, "n_units_live")
        else instance.database.n_tuples
    )
    return Table2Result(
        dataset=dataset,
        scale=scale,
        measured_nodes=len(instance.graph),
        measured_units=n_units,
        measured_updates=updates,
        measured_rho=float(np.mean(rhos)) if rhos else float("nan"),
        measured_sigma=float(np.mean(sigmas)),
        paper_rho=paper["rho"],
        paper_sigma=paper["sigma"],
    )


def main() -> None:
    for dataset in ("temperature", "memory"):
        emit(run(dataset=dataset).to_table())
        emit()


if __name__ == "__main__":
    main()
