"""Degradation of the sampling protocol under injected faults.

The paper assumes the overlay delivers messages and nodes stay up for the
duration of a walk; this experiment measures what the failure model does
to that assumption. A grid of (per-hop message-loss rate x per-step crash
probability) cells each runs one batch of supervised walks on a power-law
overlay while a :class:`~repro.network.faults.CrashProcess` removes nodes
mid-run, and reports:

* **completion rate** — walks that eventually delivered a sample;
* **recovery rate** — of the walks that timed out at least once, the
  fraction the retry supervisor still completed;
* **retry overhead** — retry-attempt traffic relative to all walk traffic
  (the price of fault tolerance in the paper's message-cost currency);
* **honesty** — the promised ``(epsilon, p)`` versus what the achieved
  sample size actually supports (Eq. 5 re-solved); a shortfall must be
  flagged ``degraded``, never silently ignored.

Everything is seeded: two runs with the same seed produce identical
ledgers, fault logs and estimates (the fault RNG is separate from the
walk RNG, so enabling faults never perturbs the walk trajectories).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

import numpy as np

from repro.core.estimators import (
    achieved_confidence,
    achieved_epsilon,
    required_sample_size,
)
from repro.experiments.report import format_table
from repro.network.faults import CrashProcess, FaultConfig, FaultPlan
from repro.obs.schema import SPAN_FAULT_CELL, SPAN_SNAPSHOT_QUERY
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.topology import power_law_topology
from repro.obs.analysis import verify_trace_consistency
from repro.obs.console import emit
from repro.obs.export import export_trace
from repro.obs.tracer import RecordingTracer, RunMetricsSink, Trace
from repro.protocol.runtime import ProtocolConfig, ProtocolSampler, RetryPolicy
from repro.sampling.weights import uniform_weights
from repro.sim.engine import PRIORITY_CHURN, SimulationEngine
from repro.sim.metrics import RunMetrics


@dataclass(frozen=True)
class FaultSweepConfig:
    """Shape of the sweep (sizes chosen so full mode runs in seconds)."""

    n_nodes: int = 80
    walk_length: int = 20
    epsilon: float = 0.5
    confidence: float = 0.95
    loss_rates: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10)
    crash_rates: tuple[float, ...] = (0.0, 0.02, 0.05)
    latency_jitter: int = 1
    crash_period: int = 25
    crash_horizon: int = 150
    timeout: int = 80
    max_retries: int = 40
    backoff: float = 1.2


@dataclass
class FaultRow:
    """Measurements for one (loss, crash) cell."""

    message_loss: float
    crash_probability: float
    n_required: int
    n_achieved: int
    completion_rate: float
    recovery_rate: float
    walks_retried: int
    retries: int
    retry_overhead: float
    estimate: float
    true_mean: float
    promised_epsilon: float
    achieved_epsilon: float
    achieved_confidence: float
    degraded: bool
    faults: dict[str, int]
    ledger_breakdown: dict[str, int]


@dataclass
class FaultSweepResult:
    config: FaultSweepConfig
    rows: list[FaultRow]
    metrics: RunMetrics
    #: full telemetry capture of the sweep; ``metrics``' counters are
    #: derived from it (RunMetricsSink), so replaying the trace must
    #: reproduce them exactly — see --verify-trace
    trace: Trace | None = None

    def to_table(self) -> str:
        table_rows = [
            [
                row.message_loss,
                row.crash_probability,
                f"{row.n_achieved}/{row.n_required}",
                row.completion_rate,
                row.recovery_rate,
                row.retry_overhead,
                abs(row.estimate - row.true_mean),
                row.achieved_epsilon,
                row.achieved_confidence,
                "yes" if row.degraded else "no",
            ]
            for row in self.rows
        ]
        return format_table(
            [
                "loss",
                "crash",
                "n ach/req",
                "completion",
                "recovery",
                "retry ovh",
                "|error|",
                "eps ach",
                "p ach",
                "degraded",
            ],
            table_rows,
            title=(
                f"Fault tolerance (N={self.config.n_nodes}, walk length "
                f"{self.config.walk_length}, promised eps="
                f"{self.config.epsilon} p={self.config.confidence})"
            ),
            precision=3,
        )


def _run_cell(
    config: FaultSweepConfig,
    message_loss: float,
    crash_probability: float,
    seed: int,
    tracer: RecordingTracer,
) -> FaultRow:
    """One sweep cell: supervised walks under one (loss, crash) setting."""
    rng = np.random.default_rng(seed)
    n_nodes = config.n_nodes
    graph = OverlayGraph(power_law_topology(n_nodes, rng=rng), n_nodes=n_nodes)
    values = {node: float(rng.normal(10.0, 2.0)) for node in graph.nodes()}
    true_mean = float(np.mean(list(values.values())))
    sigma = float(np.std(list(values.values())))
    n_required = required_sample_size(
        sigma, config.epsilon, config.confidence
    )

    origin = 0
    simulation = SimulationEngine()
    ledger = MessageLedger()
    plan = FaultPlan(
        FaultConfig(
            message_loss=message_loss,
            crash_probability=crash_probability,
            latency_jitter=config.latency_jitter,
            min_nodes=n_nodes // 2,
        ),
        rng=seed + 1,
    )
    cell_span = tracer.span(
        SPAN_FAULT_CELL,
        time=0,
        message_loss=message_loss,
        crash_probability=crash_probability,
        seed=seed,
    )
    sampler = ProtocolSampler(
        graph,
        uniform_weights(),
        simulation,
        np.random.default_rng(seed + 2),
        ledger,
        ProtocolConfig(variant="bounce"),
        faults=plan,
        retry=RetryPolicy(
            timeout=config.timeout,
            max_retries=config.max_retries,
            backoff=config.backoff,
        ),
        tracer=tracer,
    )
    crash = CrashProcess(graph, plan, protected={origin})
    if crash_probability > 0.0:

        def crash_round(time: int) -> None:
            crashed = crash.step(time)
            sampler.handle_topology_change(left=crashed)

        simulation.schedule_every(
            config.crash_period,
            crash_round,
            priority=PRIORITY_CHURN,
            start=config.crash_period,
            until=config.crash_horizon,
        )

    sampled = sampler.run_walks(
        origin, n_required, config.walk_length, allow_partial=True
    )
    stats = sampler.walk_stats

    n_achieved = len(sampled)
    degraded = n_achieved < n_required
    sample_values = np.array([values[node] for node in sampled], dtype=float)
    estimate = float(sample_values.mean()) if n_achieved else float("nan")
    # variance of the mean estimator at the achieved sample size
    variance = (
        float(np.mean((sample_values - estimate) ** 2)) / n_achieved
        if n_achieved
        else float("inf")
    )
    walk_traffic = ledger.walk_steps + ledger.sample_returns + ledger.retries
    # the cell's estimate is one forced snapshot query; the span is what
    # books samples_total/samples_fresh/degraded_estimates on the metrics
    query_span = tracer.span(
        SPAN_SNAPSHOT_QUERY,
        time=simulation.now,
        parent=cell_span,
        trigger="forced",
    )
    tracer.end(
        query_span,
        time=simulation.now,
        aggregate=estimate,
        n_total=n_achieved,
        n_fresh=n_achieved,
        n_retained=0,
        degraded=degraded,
    )
    tracer.end(
        cell_span,
        time=simulation.now,
        n_required=n_required,
        n_achieved=n_achieved,
    )
    return FaultRow(
        message_loss=message_loss,
        crash_probability=crash_probability,
        n_required=n_required,
        n_achieved=n_achieved,
        completion_rate=stats.completion_rate,
        recovery_rate=stats.recovery_rate,
        walks_retried=stats.attempts - stats.launched,
        retries=ledger.retries,
        retry_overhead=ledger.retries / walk_traffic if walk_traffic else 0.0,
        estimate=estimate,
        true_mean=true_mean,
        promised_epsilon=config.epsilon,
        achieved_epsilon=(
            achieved_epsilon(variance, config.confidence)
            if n_achieved
            else float("inf")
        ),
        achieved_confidence=(
            achieved_confidence(config.epsilon, variance)
            if n_achieved
            else 0.0
        ),
        degraded=degraded,
        faults=plan.log.counts(),
        ledger_breakdown=ledger.breakdown(),
    )


def run(
    config: FaultSweepConfig | None = None,
    seed: int = 0,
    tracer: RecordingTracer | None = None,
) -> FaultSweepResult:
    """Run the full loss x crash sweep; deterministic in ``seed``.

    The sweep always runs traced: counters on the returned ``metrics``
    are *derived* from the span stream by a
    :class:`~repro.obs.tracer.RunMetricsSink` (single source of truth —
    no hand-booked duplicates), and the full trace is returned for
    export/verification. Pass a ``tracer`` to add extra sinks or
    metadata; otherwise one is created.
    """
    config = config if config is not None else FaultSweepConfig()
    if tracer is None:
        tracer = RecordingTracer(
            meta={"experiment": "fault_tolerance", "seed": seed}
        )
    rows: list[FaultRow] = []
    metrics = RunMetrics()
    tracer.add_sink(RunMetricsSink(metrics))
    for i, loss in enumerate(config.loss_rates):
        for j, crash in enumerate(config.crash_rates):
            cell_seed = seed + 1000 * i + 10 * j
            row = _run_cell(config, loss, crash, cell_seed, tracer)
            rows.append(row)
            # series stay hand-recorded: cell-indexed, not sim-timed
            metrics.series("completion_rate").record(
                len(rows), row.completion_rate
            )
            metrics.series("retry_overhead").record(
                len(rows), row.retry_overhead
            )
    return FaultSweepResult(
        config=config, rows=rows, metrics=metrics, trace=tracer.trace()
    )


def smoke_config() -> FaultSweepConfig:
    """Reduced sweep for CI: two loss rates x two crash rates, small N."""
    return FaultSweepConfig(
        n_nodes=40,
        loss_rates=(0.0, 0.10),
        crash_rates=(0.0, 0.05),
        crash_horizon=100,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sweep for CI (2x2 grid, small overlay)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="export the sweep's JSONL telemetry trace to this path",
    )
    parser.add_argument(
        "--verify-trace",
        action="store_true",
        help="fail unless replayed-trace counters equal the live metrics",
    )
    args = parser.parse_args(argv)
    config = smoke_config() if args.smoke else FaultSweepConfig()
    result = run(config, seed=args.seed)
    emit(result.to_table())
    worst = [
        row
        for row in result.rows
        if row.message_loss == max(config.loss_rates)
        and row.crash_probability == max(config.crash_rates)
    ]
    for row in worst:
        emit(
            f"\nworst cell (loss={row.message_loss}, crash="
            f"{row.crash_probability}): completion {row.completion_rate:.3f}, "
            f"recovery {row.recovery_rate:.3f}, faults: "
            + ", ".join(f"{k}={v}" for k, v in sorted(row.faults.items()))
        )
    # honesty check: every row either meets the promise or says it didn't
    dishonest = [
        row
        for row in result.rows
        if not row.degraded and row.n_achieved < row.n_required
    ]
    if dishonest:
        emit(f"DISHONEST ROWS: {len(dishonest)}")
        return 1
    assert result.trace is not None
    if args.trace_out:
        path = export_trace(result.trace, args.trace_out)
        emit(
            f"\ntrace: {len(result.trace.spans)} spans, "
            f"{len(result.trace.events)} events -> {path}"
        )
    if args.verify_trace:
        mismatches = verify_trace_consistency(result.trace, result.metrics)
        if mismatches:
            emit("TRACE-COUNTER MISMATCH:")
            for mismatch in mismatches:
                emit(f"  {mismatch}")
            return 1
        emit("trace-vs-counters consistency: OK")
    return 0


if __name__ == "__main__":
    main()
