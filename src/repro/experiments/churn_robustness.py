"""Sampling correctness under churn.

The paper assumes the overlay is static *within* an occasion but may
change arbitrarily *between* occasions (Section II). Two things must then
keep working without any global coordination:

1. **The continued-walk pool** — walker positions carried across
   occasions may sit on departed nodes; the operator prunes them and
   replaces them with fresh full-mixing walks. The sampled distribution
   at each occasion must still match that occasion's target.
2. **The retained sample-set** — repeated sampling's matched portion
   shrinks as tuples vanish with departing nodes; the evaluator must
   backfill with fresh samples and keep meeting the variance target.

This experiment measures both against the per-step leave probability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.report import format_table
from repro.network.churn import ChurnConfig, ChurnProcess
from repro.network.graph import OverlayGraph
from repro.network.topology import power_law_topology
from repro.obs.console import emit
from repro.sampling.metropolis import stationary_distribution
from repro.sampling.mixing import total_variation
from repro.sampling.operator import SamplerConfig
from repro.sampling.pool import SamplePool
from repro.sampling.weights import content_size_weights
from repro.db.relation import P2PDatabase, Schema


@dataclass
class ChurnRobustnessRow:
    leave_probability: float
    mean_tv: float  # sampled-node TV vs the per-occasion target
    pool_survival: float  # fraction of continued walkers that survived
    retained_fraction: float  # RPT matched fraction actually achieved
    mean_error: float  # RPT estimate error


@dataclass
class ChurnRobustnessResult:
    n_nodes: int
    occasions: int
    rows: list[ChurnRobustnessRow]

    def to_table(self) -> str:
        return format_table(
            [
                "leave prob/step",
                "sample TV vs target",
                "walker pool survival",
                "retained fraction",
                "RPT mean |error|",
            ],
            [
                [
                    row.leave_probability,
                    row.mean_tv,
                    row.pool_survival,
                    row.retained_fraction,
                    row.mean_error,
                ]
                for row in self.rows
            ],
            title=(
                f"Sampling robustness under churn (N~{self.n_nodes}, "
                f"{self.occasions} occasions)"
            ),
            precision=4,
        )


def _build_world(
    n_nodes: int, rng: np.random.Generator
) -> tuple[OverlayGraph, P2PDatabase]:
    graph = OverlayGraph(power_law_topology(n_nodes, rng=rng), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    for node in graph.nodes():
        for _ in range(int(rng.integers(1, 5))):
            database.insert(node, {"v": float(rng.normal(10, 2))})
    return graph, database


def _populate_joined(
    database: P2PDatabase, nodes: list[int], rng: np.random.Generator
) -> None:
    for node in nodes:
        for _ in range(int(rng.integers(1, 5))):
            database.insert(node, {"v": float(rng.normal(10, 2))})


def run(
    n_nodes: int = 80,
    occasions: int = 6,
    samples_per_occasion: int = 2500,
    leave_probabilities: tuple[float, ...] = (0.0, 0.02, 0.05, 0.10),
    seed: int = 0,
) -> ChurnRobustnessResult:
    rows = []
    for leave_probability in leave_probabilities:
        rng = np.random.default_rng(seed)
        graph, database = _build_world(n_nodes, rng)
        churn = ChurnProcess(
            graph,
            ChurnConfig(
                leave_probability=leave_probability,
                join_rate=leave_probability * n_nodes,
                min_nodes=n_nodes // 2,
            ),
            rng,
            protected={0},
        )
        operator = SamplePool(
            graph,
            np.random.default_rng(seed + 1),
            sampler_config=SamplerConfig(gamma=0.02, recompute_drift=0.02),
        ).operator

        # --- (1) distributional correctness of node sampling ------------
        tvs = []
        survivals = []
        for occasion in range(occasions):
            event = churn.step()
            database.handle_churn(event)
            _populate_joined(database, event.joined, rng)
            pool = operator.pool_nodes
            pool_before = [node for node in pool if node in graph]
            survivals.append(
                len(pool_before) / len(pool) if pool else 1.0
            )
            weight = content_size_weights(database)
            node_ids, target = stationary_distribution(graph, weight)
            index_of = {int(n): i for i, n in enumerate(node_ids)}
            sampled = operator.sample_nodes(
                weight, samples_per_occasion, origin=0
            )
            counts = np.zeros(len(node_ids))
            for node in sampled:
                counts[index_of[node]] += 1
            tvs.append(total_variation(counts / counts.sum(), target))

        # --- (2) repeated sampling across the same kind of churn ---------
        from repro.core.query import parse_query
        from repro.core.repeated import RepeatedEvaluator
        from repro.db.expression import Expression

        rng2 = np.random.default_rng(seed + 2)
        graph2, database2 = _build_world(n_nodes, rng2)
        churn2 = ChurnProcess(
            graph2,
            ChurnConfig(
                leave_probability=leave_probability,
                join_rate=leave_probability * n_nodes,
                min_nodes=n_nodes // 2,
            ),
            rng2,
            protected={0},
        )
        evaluator = RepeatedEvaluator(
            database2,
            SamplePool(
                graph2,
                np.random.default_rng(seed + 3),
                sampler_config=SamplerConfig(recompute_drift=0.02),
            ).operator,
            0,
            parse_query("SELECT AVG(v) FROM R"),
            np.random.default_rng(seed + 4),
        )
        retained_fractions = []
        errors = []
        for occasion in range(occasions):
            event = churn2.step()
            database2.handle_churn(event)
            _populate_joined(database2, event.joined, rng2)
            # mild value evolution so the correlation is real
            for tuple_id, _, row in list(database2.iter_tuples()):
                database2.update(
                    tuple_id,
                    {"v": 0.95 * row["v"] + 0.5 + float(rng2.normal(0, 0.3))},
                )
            estimate = evaluator.evaluate(occasion, epsilon=0.5, confidence=0.95)
            if occasion > 0:
                retained_fractions.append(
                    estimate.n_retained / max(1, estimate.n_total)
                )
            truth = float(database2.exact_values(Expression("v")).mean())
            errors.append(abs(estimate.mean - truth))

        rows.append(
            ChurnRobustnessRow(
                leave_probability=leave_probability,
                mean_tv=float(np.mean(tvs)),
                pool_survival=float(np.mean(survivals)),
                retained_fraction=float(np.mean(retained_fractions)),
                mean_error=float(np.mean(errors)),
            )
        )
    return ChurnRobustnessResult(
        n_nodes=n_nodes, occasions=occasions, rows=rows
    )


def main() -> None:
    emit(run().to_table())


if __name__ == "__main__":
    main()
