"""Node weight functions for the sampling operator.

A weight function assigns each node ``v`` a non-negative weight ``w_v``;
the sampling operator draws node ``v`` with probability
``p_v = w_v / sum_u w_u`` (Section III). Weights depend only on *local*
node properties, so a node can report its own weight to a probing walker —
no global normalization is ever computed.

Weight functions here are plain callables ``node_id -> float``. The two
the paper names explicitly:

* ``uniform_weights()`` — ``w_v = 1`` (uniform node sampling);
* ``content_size_weights(db)`` — ``w_v = m_v`` (first stage of uniform
  tuple sampling).
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.db.relation import P2PDatabase
from repro.errors import SamplingError
from repro.network.graph import OverlayGraph

WeightFunction = Callable[[int], float]


def uniform_weights() -> WeightFunction:
    """``w_v = 1`` for every node: sample nodes uniformly."""

    def weight(node: int) -> float:
        return 1.0

    return weight


def content_size_weights(
    database: P2PDatabase, floor: float = 0.0
) -> WeightFunction:
    """``w_v = m_v``: node weight equals its current tuple count.

    Combined with a uniform local tuple draw this makes every tuple of the
    relation equally likely (two-stage sampling, Section III). ``floor``
    optionally lifts empty nodes to a tiny positive weight so the chain
    stays irreducible when fragments can be empty; tuples are still drawn
    only from non-empty nodes (the operator rejects and re-walks).
    """
    if floor < 0:
        raise SamplingError(f"weight floor must be >= 0, got {floor}")

    def weight(node: int) -> float:
        return max(float(len(database.store(node))), floor)

    return weight


def degree_weights(graph: OverlayGraph) -> WeightFunction:
    """``w_v = deg(v)``: the stationary law of an *unbiased* random walk.

    Provided for ablations — it is the distribution naive random-walk
    sampling converges to, and is generally biased for tuple sampling.
    """

    def weight(node: int) -> float:
        return float(graph.degree(node))

    return weight


def table_weights(weights: dict[int, float]) -> WeightFunction:
    """Fixed per-node weights from a dict (missing nodes are an error)."""
    for node, value in weights.items():
        if value < 0:
            raise SamplingError(f"weight of node {node} is negative ({value})")

    def weight(node: int) -> float:
        try:
            return float(weights[node])
        except KeyError:
            raise SamplingError(f"no weight for node {node}") from None

    return weight


def validate_weights(
    weight: WeightFunction, nodes: Iterable[int]
) -> None:
    """Check all ``nodes`` have finite non-negative weight, at least one > 0."""
    any_positive = False
    for node in nodes:
        value = weight(node)
        if not value >= 0.0:  # also catches NaN
            raise SamplingError(f"weight of node {node} is invalid ({value})")
        any_positive = any_positive or value > 0.0
    if not any_positive:
        raise SamplingError("all node weights are zero")
