"""Distributed random sampling from unstructured P2P databases (Section V).

The sampling operator ``S`` draws a random node with probability
proportional to an arbitrary weight function, by running a Metropolis
random walk over the overlay whose stationary distribution is the target
distribution. Two-stage sampling (weighted node, then uniform local tuple)
yields uniformly random tuples from the whole relation.

Modules
-------
* :mod:`repro.sampling.weights` — weight functions (uniform, content size,
  degree, custom).
* :mod:`repro.sampling.metropolis` — Metropolis forwarding probabilities
  (Eq. 12) and the full transition matrix for analysis.
* :mod:`repro.sampling.walker` — the random-walk sampling agent.
* :mod:`repro.sampling.mixing` — total-variation distance, eigengap,
  mixing-time bound (Theorems 1-4).
* :mod:`repro.sampling.operator` — the sampling operator ``S``: batch mode,
  continued walks with reset time, two-stage and cluster tuple sampling.
* :mod:`repro.sampling.pool` — the shared sample pool between queries and
  the operator: freshness epochs, per-consumer reuse cursors, coalesced
  prefetch batches (the multi-query amortization layer).
* :mod:`repro.sampling.size_estimation` — capture-recapture estimators for
  network and relation size (needed by SUM/COUNT without an oracle).
"""

from repro.sampling.metropolis import metropolis_matrix, stationary_distribution
from repro.sampling.mixing import (
    eigengap,
    empirical_mixing_time,
    mixing_time_bound,
    total_variation,
)
from repro.sampling.operator import (
    SamplerConfig,
    SampleSource,
    SamplingOperator,
    TupleSample,
)
from repro.sampling.pool import PoolConfig, PooledSample, PoolLease, SamplePool
from repro.sampling.size_estimation import (
    estimate_network_size,
    estimate_relation_size,
)
from repro.sampling.walker import MetropolisWalker
from repro.sampling.weights import (
    content_size_weights,
    degree_weights,
    uniform_weights,
)

__all__ = [
    "MetropolisWalker",
    "PoolConfig",
    "PoolLease",
    "PooledSample",
    "SamplePool",
    "SamplerConfig",
    "SampleSource",
    "SamplingOperator",
    "TupleSample",
    "content_size_weights",
    "degree_weights",
    "eigengap",
    "empirical_mixing_time",
    "estimate_network_size",
    "estimate_relation_size",
    "metropolis_matrix",
    "mixing_time_bound",
    "stationary_distribution",
    "total_variation",
    "uniform_weights",
]
