"""Convergence analysis for the sampling walk (Section V-B).

Implements the quantities of Definitions 1-2 and Theorems 3-4:

* :func:`total_variation` — the total-variation difference
  ``||pi_t, p|| = (1/2) * sum_i |pi_t(i) - p(i)||``;
* :func:`eigengap` — ``theta_P = 1 - |lambda_2|`` of the forwarding matrix;
* :func:`mixing_time_bound` — Theorem 3's bound
  ``tau(gamma) <= theta^-1 * log((p_min * gamma)^-1)``;
* :func:`empirical_mixing_time` — exact mixing time by power iteration of
  the worst-case start distribution (feasible at experiment scales);
* :func:`relaxation_time` — ``1/theta``, used as the *reset time* between
  successive samples taken from a continued walk (Section VI-A).
"""

from __future__ import annotations

import math

import numpy as np
import scipy.linalg
import scipy.sparse
import scipy.sparse.linalg

from repro.errors import SamplingError


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance ``(1/2) * ||p - q||_1`` between distributions."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise SamplingError(f"shape mismatch: {p.shape} vs {q.shape}")
    return 0.5 * float(np.abs(p - q).sum())


def eigengap(transition_matrix: np.ndarray) -> float:
    """Spectral gap ``1 - |lambda_2|`` of a row-stochastic matrix.

    Uses a dense eigendecomposition; the experiment-scale matrices are at
    most a few thousand rows. For a lazy reversible chain all eigenvalues
    are real and lie in ``[0, 1]``, but we take magnitudes to stay correct
    for non-lazy (possibly periodic) variants used in ablations.
    """
    matrix = np.asarray(transition_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise SamplingError(f"transition matrix must be square, got {matrix.shape}")
    rows = matrix.sum(axis=1)
    if not np.allclose(rows, 1.0, atol=1e-8):
        raise SamplingError("matrix rows must sum to 1")
    eigenvalues = scipy.linalg.eigvals(matrix)
    magnitudes = np.sort(np.abs(eigenvalues))[::-1]
    if magnitudes.size < 2:
        return 1.0
    # magnitudes[0] is the Perron eigenvalue 1 (up to numerical noise)
    return float(max(0.0, 1.0 - magnitudes[1]))


def mixing_time_bound(
    gap: float, p_min: float, gamma: float
) -> int:
    """Theorem 3: ``tau(gamma) <= gap^-1 * log(1 / (p_min * gamma))``.

    Returns the bound rounded up to an integer step count.
    """
    if not 0.0 < gap <= 1.0:
        raise SamplingError(f"eigengap must be in (0, 1], got {gap}")
    if not 0.0 < p_min <= 1.0:
        raise SamplingError(f"p_min must be in (0, 1], got {p_min}")
    if not 0.0 < gamma < 1.0:
        raise SamplingError(f"gamma must be in (0, 1), got {gamma}")
    return max(1, int(math.ceil(math.log(1.0 / (p_min * gamma)) / gap)))


def relaxation_time(gap: float) -> int:
    """``ceil(1/theta)`` — the reset time for continued walks."""
    if not 0.0 < gap <= 1.0:
        raise SamplingError(f"eigengap must be in (0, 1], got {gap}")
    return max(1, int(math.ceil(1.0 / gap)))


def empirical_mixing_time(
    transition_matrix: np.ndarray,
    target: np.ndarray,
    gamma: float,
    max_steps: int = 100_000,
) -> int:
    """Exact mixing time by iterating the worst-case point-mass start.

    For a reversible chain the slowest-converging start is a point mass, so
    we iterate all point-mass rows at once (matrix powers) and report the
    first ``t`` with ``max_i ||e_i P^t - target|| <= gamma`` — matching
    Definition 2's worst-case-over-starts semantics.
    """
    matrix = np.asarray(transition_matrix, dtype=float)
    target = np.asarray(target, dtype=float)
    if not 0.0 < gamma < 1.0:
        raise SamplingError(f"gamma must be in (0, 1), got {gamma}")
    if matrix.shape[0] != target.size:
        raise SamplingError(
            f"target size {target.size} does not match matrix {matrix.shape}"
        )
    power = np.eye(matrix.shape[0])
    for step in range(1, max_steps + 1):
        power = power @ matrix
        worst = 0.5 * np.abs(power - target[None, :]).sum(axis=1).max()
        if worst <= gamma:
            return step
    raise SamplingError(
        f"chain did not mix to gamma={gamma} within {max_steps} steps"
    )


def sparse_transition_matrix(
    offsets: np.ndarray,
    targets: np.ndarray,
    weights: np.ndarray,
    laziness: float = 0.5,
) -> scipy.sparse.csr_matrix:
    """Metropolis forwarding matrix in CSR form from a CSR overlay snapshot.

    Vectorized equivalent of :func:`repro.sampling.metropolis.metropolis_matrix`
    for large overlays: ``offsets``/``targets`` are the CSR adjacency over
    compact indices and ``weights`` the per-index node weights.
    """
    if not 0.0 <= laziness < 1.0:
        raise SamplingError(f"laziness must be in [0, 1), got {laziness}")
    n = offsets.size - 1
    degrees = np.diff(offsets).astype(float)
    if np.any(degrees == 0) and n > 1:
        raise SamplingError("isolated nodes have no transitions")
    source = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
    weight_i = weights[source]
    weight_j = weights[targets]
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = (weight_j * degrees[source]) / (weight_i * degrees[targets])
    ratio[weight_i == 0.0] = 1.0
    accept = np.minimum(1.0, ratio)
    values = (1.0 - laziness) / degrees[source] * accept
    matrix = scipy.sparse.csr_matrix((values, targets, offsets), shape=(n, n))
    diagonal = 1.0 - np.asarray(matrix.sum(axis=1)).ravel()
    return matrix + scipy.sparse.diags(diagonal)


def eigengap_sparse(transition_matrix: scipy.sparse.spmatrix) -> float:
    """Spectral gap of a sparse row-stochastic matrix via Lanczos/Arnoldi.

    Falls back to the dense path when the iterative solver fails to
    converge (small or ill-conditioned chains).
    """
    n = transition_matrix.shape[0]
    if n <= 64:
        return eigengap(np.asarray(transition_matrix.todense()))
    try:
        eigenvalues = scipy.sparse.linalg.eigs(
            transition_matrix.astype(float),
            k=2,
            which="LM",
            return_eigenvectors=False,
            maxiter=5000,
            tol=1e-8,
        )
        magnitudes = np.sort(np.abs(eigenvalues))[::-1]
        second = min(magnitudes[1], 1.0)
        return float(max(0.0, 1.0 - second))
    except (scipy.sparse.linalg.ArpackNoConvergence, RuntimeError):
        return eigengap(np.asarray(transition_matrix.todense()))


def walk_length_for(
    transition_matrix: np.ndarray,
    target: np.ndarray,
    gamma: float,
) -> int:
    """Walk length satisfying ``||pi_t, p|| <= gamma`` via Theorem 3.

    Computes the eigengap of ``transition_matrix`` and applies the bound
    with ``p_min = min(target)``. This is what the sampling operator uses
    when asked for an analytically guaranteed walk length.
    """
    gap = eigengap(transition_matrix)
    if gap <= 0.0:
        raise SamplingError("zero eigengap: the chain does not converge")
    p_min = float(np.min(target))
    if p_min <= 0.0:
        raise SamplingError("target assigns zero mass to some node")
    return mixing_time_bound(gap, p_min, gamma)
