"""Importance-sampling alternative to Metropolis targeting.

Why does Digest bias the walk *itself* (Metropolis, Section V) instead of
running a plain random walk and re-weighting the samples? This module
implements that alternative so the question is answerable empirically:

* a plain (lazy) random walk has stationary distribution proportional to
  node degree ``d_v``;
* two-stage sampling through it reaches tuple ``u`` at node ``v`` with
  probability proportional to ``d_v / m_v``;
* the self-normalized importance-sampling (Hansen-Hurwitz style) mean
  estimator corrects with weights ``w = m_v / d_v``::

      R_hat = sum(w_i * y_i) / sum(w_i)

The correction needs no global normalizer (that is why it is the fair
comparison — an exact Hansen-Hurwitz estimator would need ``sum_v d_v``),
but it is only *asymptotically* unbiased and its variance inflates with
the spread of the weights — precisely when content sizes are skewed
against degrees, the regime unstructured P2P databases live in. The
ablation (:func:`repro.experiments.ablations.importance_sampling_ablation`)
quantifies the gap against Metropolis two-stage sampling at equal sample
counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.expression import Expression
from repro.db.relation import P2PDatabase
from repro.errors import SamplingError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.sampling.walker import WalkContext, batch_walk
from repro.sampling.weights import degree_weights


@dataclass(frozen=True)
class WeightedSample:
    """A tuple sample with its importance weight ``m_v / d_v``."""

    tuple_id: int
    node: int
    value: float
    weight: float


class ImportanceSampler:
    """Plain-random-walk tuple sampling with self-normalized reweighting."""

    def __init__(
        self,
        graph: OverlayGraph,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        walk_length: int = 80,
        laziness: float = 0.5,
    ) -> None:
        if walk_length < 1:
            raise SamplingError(f"walk_length must be >= 1, got {walk_length}")
        self._graph = graph
        self._rng = rng
        self._ledger = ledger
        self._walk_length = walk_length
        self._laziness = laziness

    def sample_weighted_tuples(
        self,
        database: P2PDatabase,
        expression: Expression,
        n: int,
        origin: int,
        max_retries: int = 8,
    ) -> list[WeightedSample]:
        """Draw ``n`` weighted tuple samples via plain random walks."""
        if n <= 0:
            raise SamplingError(f"need n >= 1 samples, got {n}")
        if origin not in self._graph:
            raise SamplingError(f"origin {origin} is not in the overlay")
        context = WalkContext.from_graph(self._graph, degree_weights(self._graph))
        samples: list[WeightedSample] = []
        need = n
        for _ in range(max_retries):
            if need == 0:
                break
            starts = np.full(need, context.compact_index(origin), dtype=np.int64)
            ends = batch_walk(
                context,
                starts,
                self._walk_length,
                self._rng,
                self._ledger,
                self._laziness,
            )
            for end in ends:
                node = int(context.node_ids[end])
                store = database.store(node)
                if len(store) == 0:
                    continue  # plain walks do land on empty nodes
                tuple_id = store.sample_uniform(self._rng)
                row = store.get(tuple_id)
                samples.append(
                    WeightedSample(
                        tuple_id=tuple_id,
                        node=node,
                        value=expression.evaluate(row),
                        weight=len(store) / self._graph.degree(node),
                    )
                )
            need = n - len(samples)
        if need > 0:
            raise SamplingError(
                f"failed to draw {n} weighted tuples after {max_retries} "
                f"rounds ({len(samples)} drawn)"
            )
        return samples


def self_normalized_mean(samples: list[WeightedSample]) -> float:
    """``sum(w y) / sum(w)`` — the SNIS estimate of the tuple mean."""
    if not samples:
        raise SamplingError("cannot estimate from zero samples")
    total_weight = sum(s.weight for s in samples)
    if total_weight <= 0:
        raise SamplingError("all importance weights are zero")
    return sum(s.weight * s.value for s in samples) / total_weight


def effective_sample_size(samples: list[WeightedSample]) -> float:
    """Kish effective sample size ``(sum w)^2 / sum(w^2)``.

    Measures how much the weight spread has cost: equals ``n`` for
    uniform weights and collapses toward 1 when a few samples dominate.
    """
    if not samples:
        raise SamplingError("cannot compute ESS of zero samples")
    weights = np.array([s.weight for s in samples])
    total = weights.sum()
    if total <= 0:
        raise SamplingError("all importance weights are zero")
    return float(total**2 / (weights**2).sum())
