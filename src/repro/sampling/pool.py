"""The shared sample pool: one sampling substrate, many queries.

Section III packages sampling as a *database operator* precisely so its
cost can be amortized: a uniformly random tuple drawn by a Metropolis walk
is a valid sample for **every** query that needs uniform tuples at the
same occasion, not just the query that happened to request it. BlinkDB
makes the same observation for shared samples serving many bounded-error
queries; the "Sampling Algebra" line of work supplies the bookkeeping rule
that makes reuse sound: a query may reuse pooled samples as long as *it*
never sees the same draw twice, because then its own sample-set is still
i.i.d. and every variance formula (Eq. 6 CLT sizing, the Eq. 7/8
inverse-variance combination of the repeated evaluator) applies unchanged.
Estimates of co-resident queries become correlated with each other — the
harmless price of paying for each walk once instead of once per query;
each query's marginal ``(epsilon, p)`` contract is untouched.

:class:`SamplePool` implements that contract:

* it **owns** the :class:`~repro.sampling.operator.SamplingOperator`
  (digest-lint DGL008 forbids constructing one anywhere else outside
  :mod:`repro.sampling`) and is the only way queries reach it;
* every pooled sample carries a **freshness epoch** (the simulated time it
  was drawn at) and a monotonically increasing **serial**;
  :meth:`begin_epoch` evicts samples older than ``max_age`` epochs — the
  default ``max_age=0`` keeps only same-tick samples, the paper's
  static-during-occasion assumption;
* each consumer (query) holds a **cursor**: the highest serial it has
  consumed. :meth:`acquire` serves only samples *beyond* the cursor, so a
  query topping up sequentially never double-counts a draw, while two
  different queries overlap fully on the same pooled samples;
* only the marginal shortfall ``n_required - n_pooled`` is drawn fresh
  through the operator — the pool hit/miss split is counted
  (:attr:`pool_hits` / :attr:`pool_misses`), traced (``pool_serve``
  spans), and derived into
  :class:`~repro.sim.metrics.RunMetrics` by the standard sink;
* :meth:`prefetch` draws one **coalesced walk batch** on behalf of several
  queries at once (the session's demand coalescing), recording a
  ``shared_walk_batch`` span attributing the batch to every consuming
  query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.db.relation import P2PDatabase
from repro.errors import SamplingError
from repro.network.faults import FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.partitions import PartitionPlan
from repro.obs.schema import (
    EVENT_POOL_INVALIDATE,
    SPAN_POOL_SERVE,
    SPAN_SHARED_WALK_BATCH,
)
from repro.obs.tracer import NO_TIME, NULL_TRACER, Tracer
from repro.sampling.operator import (
    SamplerConfig,
    SamplingOperator,
    TupleSample,
)
from repro.sampling.weights import WeightFunction


@dataclass(frozen=True)
class PoolConfig:
    """Freshness policy of the shared pool.

    ``max_age`` is the number of epochs a pooled sample stays servable
    after the epoch it was drawn in: ``0`` (default) restricts reuse to
    the same simulated tick — the paper's static-during-occasion model —
    while larger values let slowly-changing relations amortize walks
    across nearby occasions at the cost of serving slightly stale rows.
    """

    max_age: int = 0

    def __post_init__(self) -> None:
        if self.max_age < 0:
            raise SamplingError(f"max_age must be >= 0, got {self.max_age}")


@dataclass(frozen=True)
class PooledSample:
    """One pooled tuple sample with its freshness/ordering tags."""

    sample: TupleSample
    epoch: int
    serial: int


class SamplePool:
    """Shared tuple-sample cache between queries and the sampling operator.

    Parameters mirror :class:`~repro.sampling.operator.SamplingOperator`
    (the pool constructs and owns the operator); use :meth:`wrapping` to
    build a pool around an existing operator instead.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        sampler_config: SamplerConfig | None = None,
        faults: FaultPlan | None = None,
        tracer: Tracer | None = None,
        config: PoolConfig | None = None,
        _operator: SamplingOperator | None = None,
        partitions: PartitionPlan | None = None,
    ) -> None:
        tracer = tracer if tracer is not None else NULL_TRACER
        if _operator is None:
            _operator = SamplingOperator(
                graph,
                rng,
                ledger,
                sampler_config,
                faults=faults,
                tracer=tracer,
                partitions=partitions,
            )
        self._init_state(_operator, tracer, config)

    def _init_state(
        self,
        operator: SamplingOperator,
        tracer: Tracer,
        config: PoolConfig | None,
    ) -> None:
        self._tracer = tracer
        self._operator = operator
        self._config = config if config is not None else PoolConfig()
        self._epoch: int = NO_TIME
        self._samples: list[PooledSample] = []
        self._cursors: dict[str, int] = {}
        self._next_serial = 0
        self.pool_hits = 0
        self.pool_misses = 0

    @classmethod
    def wrapping(
        cls,
        operator: SamplingOperator,
        tracer: Tracer | None = None,
        config: PoolConfig | None = None,
    ) -> "SamplePool":
        """A pool around an existing operator (tests, custom substrates)."""
        self = cls.__new__(cls)
        self._init_state(
            operator, tracer if tracer is not None else NULL_TRACER, config
        )
        return self

    @property
    def operator(self) -> SamplingOperator:
        """The owned sampling operator (the leased raw substrate)."""
        return self._operator

    @property
    def config(self) -> PoolConfig:
        return self._config

    @property
    def epoch(self) -> int:
        """Current freshness epoch (``NO_TIME`` before the first one)."""
        return self._epoch

    @property
    def n_pooled(self) -> int:
        """Samples currently held (all epochs still within ``max_age``)."""
        return len(self._samples)

    @property
    def hit_rate(self) -> float:
        """Fraction of served demand satisfied from the pool."""
        total = self.pool_hits + self.pool_misses
        return self.pool_hits / total if total else 0.0

    def lease(self, consumer: str) -> "PoolLease":
        """A per-query handle; ``consumer`` keys the reuse cursor."""
        return PoolLease(self, consumer)

    # ------------------------------------------------------------------
    # freshness epochs
    # ------------------------------------------------------------------

    def begin_epoch(self, time: int) -> None:
        """Advance the freshness epoch to ``time`` and evict stale samples.

        Idempotent per tick. Serials keep increasing across epochs, so
        consumer cursors stay valid through evictions.
        """
        if time == self._epoch:
            return
        self._epoch = time
        horizon = time - self._config.max_age
        self._samples = [s for s in self._samples if s.epoch >= horizon]

    def reset(self) -> None:
        """Drop all pooled samples, cursors, and hit/miss counters."""
        self._samples = []
        self._cursors = {}
        self.pool_hits = 0
        self.pool_misses = 0

    def invalidate_scope(self, time: int, reason: str) -> int:
        """Evict *every* pooled sample after a reachability change.

        Called when the population a query can reach changes — a
        partition opening, growing, shrinking, or healing. Samples drawn
        under the old scope are biased for the new one in both
        directions (a heal makes pre-heal samples under-cover the
        returned region; a cut makes pre-cut samples leak the
        unreachable side), so the pool drops them all rather than trying
        to filter. Serials keep increasing, so consumer cursors stay
        valid. Returns the number of samples evicted.
        """
        n_evicted = len(self._samples)
        self._samples = []
        self._tracer.event(
            EVENT_POOL_INVALIDATE,
            time=time,
            n_evicted=n_evicted,
            reason=reason,
        )
        return n_evicted

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def _admit(self, fresh: list[TupleSample]) -> list[PooledSample]:
        admitted = []
        for sample in fresh:
            admitted.append(
                PooledSample(
                    sample=sample, epoch=self._epoch, serial=self._next_serial
                )
            )
            self._next_serial += 1
        self._samples.extend(admitted)
        return admitted

    def _servable(self, database: P2PDatabase, cursor: int) -> list[PooledSample]:
        """Live pooled samples beyond ``cursor`` (dead tuples evicted)."""
        if any(s.sample.tuple_id not in database for s in self._samples):
            self._samples = [
                s for s in self._samples if s.sample.tuple_id in database
            ]
        return [s for s in self._samples if s.serial > cursor]

    def acquire(
        self,
        database: P2PDatabase,
        n: int,
        origin: int,
        consumer: str = "default",
        max_retries: int = 8,
        allow_partial: bool = False,
    ) -> list[TupleSample]:
        """Serve ``n`` uniform tuple samples to ``consumer``.

        Pooled samples the consumer has not seen are served first (hits);
        only the marginal shortfall is drawn fresh through the operator
        (misses), and the fresh draws are pooled for later consumers. The
        consumer's cursor advances past everything it was handed, so
        repeated calls within one epoch never serve it the same draw
        twice.
        """
        if n < 0:
            raise SamplingError(f"cannot serve {n} samples")
        if n == 0:
            return []
        cursor = self._cursors.get(consumer, -1)
        span = self._tracer.span(
            SPAN_POOL_SERVE,
            n_requested=n,
            consumer=consumer,
            origin=origin,
        )
        hits = self._servable(database, cursor)[:n]
        shortfall = n - len(hits)
        served = [pooled.sample for pooled in hits]
        drawn: list[PooledSample] = []
        if shortfall > 0:
            fresh = self._operator.sample_tuples(
                database, shortfall, origin, max_retries, allow_partial
            )
            drawn = self._admit(fresh)
            served.extend(fresh)
        self.pool_hits += len(hits)
        self.pool_misses += shortfall
        last_serial = max(
            (pooled.serial for pooled in (*hits, *drawn)), default=cursor
        )
        self._cursors[consumer] = max(cursor, last_serial)
        self._tracer.end(
            span,
            n_hit=len(hits),
            n_miss=shortfall,
            n_drawn=len(drawn),
        )
        return served

    def prefetch(
        self,
        database: P2PDatabase,
        n: int,
        origin: int,
        consumers: tuple[str, ...] = (),
        max_retries: int = 8,
        allow_partial: bool = True,
    ) -> int:
        """Draw one coalesced walk batch covering ``n`` pooled samples.

        Tops the pool up to ``n`` servable samples without advancing any
        cursor — the batch that demand coalescing runs *before* the
        consuming queries evaluate. The ``shared_walk_batch`` span
        attributes the batch (and thus every walk under it) to each
        consuming query. Returns the number of fresh samples drawn.
        """
        if n < 0:
            raise SamplingError(f"cannot prefetch {n} samples")
        available = len(self._servable(database, -1))
        need = n - available
        if need <= 0:
            return 0
        span = self._tracer.span(
            SPAN_SHARED_WALK_BATCH,
            n_requested=n,
            n_pooled=available,
            consumers=",".join(consumers),
            n_consumers=len(consumers),
            origin=origin,
        )
        fresh = self._operator.sample_tuples(
            database, need, origin, max_retries, allow_partial
        )
        self._admit(fresh)
        self._tracer.end(span, n_drawn=len(fresh))
        return len(fresh)

    # ------------------------------------------------------------------
    # operator passthroughs
    # ------------------------------------------------------------------

    def sample_nodes(self, weight: WeightFunction, n: int, origin: int) -> list[int]:
        """Node sampling has no tuple-reuse semantics; straight through."""
        return self._operator.sample_nodes(weight, n, origin)


class PoolLease:
    """One query's handle on the shared pool.

    Duck-typed to the slice of :class:`SamplingOperator` the evaluators
    use (``sample_tuples`` / ``sample_nodes``), with the consumer identity
    bound in, so an evaluator cannot accidentally consume another query's
    cursor.
    """

    def __init__(self, pool: SamplePool, consumer: str) -> None:
        self._pool = pool
        self._consumer = consumer

    @property
    def pool(self) -> SamplePool:
        return self._pool

    @property
    def consumer(self) -> str:
        return self._consumer

    def sample_tuples(
        self,
        database: P2PDatabase,
        n: int,
        origin: int,
        max_retries: int = 8,
        allow_partial: bool = False,
    ) -> list[TupleSample]:
        return self._pool.acquire(
            database,
            n,
            origin,
            consumer=self._consumer,
            max_retries=max_retries,
            allow_partial=allow_partial,
        )

    def sample_nodes(self, weight: WeightFunction, n: int, origin: int) -> list[int]:
        return self._pool.sample_nodes(weight, n, origin)
