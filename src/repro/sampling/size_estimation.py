"""Network- and relation-size estimation by sampling.

SUM and COUNT queries scale a mean estimate by the relation size ``N``
(:mod:`repro.db.aggregates`). In a real deployment no node knows ``N`` (or
even the node count ``r``), so Digest estimates both from the same uniform
node samples the operator already produces:

* **network size** — capture-recapture ("mark and recapture"): draw ``m``
  uniform node samples, mark them, draw ``n`` more, and count recaptures
  ``k``; the Chapman estimator
  ``r_hat = ((m+1)(n+1) / (k+1)) - 1`` is nearly unbiased and defined even
  with zero recaptures.
* **relation size** — ``N = r * E[m_v]`` with ``E[m_v]`` the mean content
  size under *uniform* node sampling, so
  ``N_hat = r_hat * mean(m_v over uniform samples)``.

Experiments may bypass estimation with the oracle value; the estimators
here exist so nothing in the query path *requires* global knowledge.
"""

from __future__ import annotations

import numpy as np

from repro.db.relation import P2PDatabase
from repro.errors import SamplingError
from repro.sampling.operator import SampleSource
from repro.sampling.weights import uniform_weights


def chapman_estimate(marked: int, recaptured_from: int, recaptures: int) -> float:
    """Chapman's capture-recapture population estimate.

    ``marked`` = first-phase sample size, ``recaptured_from`` = second-phase
    sample size, ``recaptures`` = second-phase draws that were marked.
    """
    if marked < 1 or recaptured_from < 1:
        raise SamplingError("both capture phases need at least one sample")
    if recaptures < 0 or recaptures > recaptured_from:
        raise SamplingError(
            f"recaptures must be in [0, {recaptured_from}], got {recaptures}"
        )
    return ((marked + 1) * (recaptured_from + 1)) / (recaptures + 1) - 1.0


def chapman_variance(marked: int, recaptured_from: int, recaptures: int) -> float:
    """Seber's variance estimate for the Chapman estimator.

    ``var(r_hat) ~= (m+1)(n+1)(m-k)(n-k) / ((k+1)^2 (k+2))``. Lets SUM and
    COUNT answers account for the uncertainty of the estimated relation
    size on top of the mean estimator's: the aggregate-level variance is
    approximately ``N^2 var(mean) + mean^2 var(N)`` (delta method, the
    cross term vanishing because the two estimates use separate samples).
    With the default 64-sample phases on experiment-scale overlays the
    ``var(N)/N^2`` term is a few percent — second order next to the
    ``epsilon/N`` mean budgets, which is why the evaluators treat the size
    as a plug-in by default and this function exists for callers that need
    the full error bar (e.g. a ThresholdMonitor on a SUM).
    """
    if marked < 1 or recaptured_from < 1:
        raise SamplingError("both capture phases need at least one sample")
    if recaptures < 0 or recaptures > recaptured_from:
        raise SamplingError(
            f"recaptures must be in [0, {recaptured_from}], got {recaptures}"
        )
    m, n, k = marked, recaptured_from, recaptures
    return ((m + 1) * (n + 1) * (m - k) * (n - k)) / (
        (k + 1) ** 2 * (k + 2)
    )


def estimate_network_size(
    operator: SampleSource,
    origin: int,
    phase_size: int = 64,
) -> float:
    """Estimate the live node count ``r`` by capture-recapture.

    Uses two phases of ``phase_size`` uniform node samples through the
    sampling operator (message costs land on the operator's ledger like any
    other samples).
    """
    weight = uniform_weights()
    marked = set(operator.sample_nodes(weight, phase_size, origin))
    second = operator.sample_nodes(weight, phase_size, origin)
    recaptures = sum(1 for node in second if node in marked)
    return chapman_estimate(len(marked), len(second), recaptures)


def estimate_relation_size(
    operator: SampleSource,
    database: P2PDatabase,
    origin: int,
    phase_size: int = 64,
) -> float:
    """Estimate the tuple count ``N = r * E[m_v]`` by sampling.

    Reuses the second capture-recapture phase's samples to estimate the
    mean content size under uniform node sampling.
    """
    weight = uniform_weights()
    marked_list = operator.sample_nodes(weight, phase_size, origin)
    marked = set(marked_list)
    second = operator.sample_nodes(weight, phase_size, origin)
    recaptures = sum(1 for node in second if node in marked)
    r_hat = chapman_estimate(len(marked), len(second), recaptures)
    sizes = [len(database.store(node)) for node in marked_list + second]
    return r_hat * float(np.mean(sizes))
