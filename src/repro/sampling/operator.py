"""The sampling operator ``S`` (Sections III and V).

Given a weight function, :class:`SamplingOperator` derives random sample
nodes whose distribution is within total-variation distance ``gamma`` of
``p_v = w_v / sum w_u``, by Metropolis random walks. On top of node
sampling it implements the two tuple-sampling schemes of Section III:

* **two-stage sampling** — node weighted by content size ``m_v``, then a
  uniform local tuple: uniform over the whole relation (Digest's choice);
* **cluster sampling** — a node sample returns its entire fragment as a
  batch (provided for the ablation showing why Digest avoids it).

Walk-length policy
------------------
The guaranteed length is Theorem 3's bound
``tau(gamma) <= theta^-1 log(1/(p_min gamma))`` with ``theta`` the
eigengap of the forwarding matrix. Computing ``theta`` exactly on every
occasion would dominate the simulation, so the operator caches it and
recomputes only when the overlay has drifted materially (node count
changed by ``recompute_drift`` or the weight fingerprint changed while
uncached); callers can also pin ``walk_length`` explicitly.

Batch mode and continued walks (Section VI-A)
---------------------------------------------
``sample_nodes(n=...)`` advances ``n`` agents in lock-step. After the
first convergence the operator keeps the walker positions; later requests
*continue* those walks, which only need the reset time (the relaxation
time ``ceil(1/theta)``) instead of the full mixing time — the optimization
the paper uses to expedite its experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.db.relation import P2PDatabase
from repro.errors import SamplingError
from repro.network.faults import FaultPlan
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.network.partitions import PartitionPlan
from repro.obs.schema import SPAN_SAMPLE_ACQUISITION, SPAN_TUPLE_SAMPLING
from repro.obs.tracer import NULL_TRACER, Tracer, bridge_fault_log
from repro.sampling import mixing
from repro.sampling.walker import WalkContext, batch_walk
from repro.sampling.weights import WeightFunction, content_size_weights


@dataclass(frozen=True)
class SamplerConfig:
    """Tuning knobs for the sampling operator.

    ``gamma`` is the total-variation tolerance of Definition 2. With
    ``walk_length=None`` the length comes from ``length_policy``:

    * ``"empirical"`` (default) — the exact number of steps after which the
      walk started at the originator is within ``gamma`` of the target,
      found by iterating the start distribution with sparse matvecs. This
      matches what the paper *measures* (tens of messages per sample).
    * ``"theorem3"`` — the analytic worst-case bound
      ``theta^-1 log(1/(p_min gamma))``, guaranteed but conservative
      (typically ~10x the empirical length).

    Both are recomputed when the overlay drifts by more than
    ``recompute_drift`` in node count. ``reset_length`` defaults to the
    relaxation time ``ceil(1/theta)``. Continued walks can be disabled for
    ablation with ``continued_walks=False``.
    """

    gamma: float = 0.01
    laziness: float = 0.5
    walk_length: int | None = None
    reset_length: int | None = None
    continued_walks: bool = True
    recompute_drift: float = 0.10
    max_walk_length: int = 1_000_000
    length_policy: str = "empirical"

    def __post_init__(self) -> None:
        if self.length_policy not in ("empirical", "theorem3"):
            raise SamplingError(
                f"length_policy must be 'empirical' or 'theorem3', "
                f"got {self.length_policy!r}"
            )
        if not 0.0 < self.gamma < 1.0:
            raise SamplingError(f"gamma must be in (0, 1), got {self.gamma}")
        if not 0.0 <= self.laziness < 1.0:
            raise SamplingError(f"laziness must be in [0, 1), got {self.laziness}")
        if self.walk_length is not None and self.walk_length < 1:
            raise SamplingError(f"walk_length must be >= 1, got {self.walk_length}")
        if self.reset_length is not None and self.reset_length < 1:
            raise SamplingError(f"reset_length must be >= 1, got {self.reset_length}")
        if not 0.0 < self.recompute_drift <= 1.0:
            raise SamplingError(
                f"recompute_drift must be in (0, 1], got {self.recompute_drift}"
            )


@dataclass(frozen=True)
class TupleSample:
    """One sampled tuple: where it lives and its state when sampled."""

    tuple_id: int
    node: int
    row: dict[str, float]


class SampleSource(Protocol):
    """The slice of the sampling substrate evaluators consume.

    Implemented by :class:`SamplingOperator` itself, by
    :class:`~repro.sampling.pool.PoolLease` (a query's handle on the
    shared :class:`~repro.sampling.pool.SamplePool`), and by
    :class:`~repro.core.node.SharedSampleSource` — anything that can
    deliver uniform tuple samples and weighted node samples.
    """

    def sample_tuples(
        self,
        database: P2PDatabase,
        n: int,
        origin: int,
        max_retries: int = 8,
        allow_partial: bool = False,
    ) -> list[TupleSample]:
        """Draw ``n`` uniformly random tuples (partial under faults)."""
        ...

    def sample_nodes(
        self, weight: WeightFunction, n: int, origin: int
    ) -> list[int]:
        """Draw ``n`` node ids with probability proportional to weight."""
        ...


@dataclass
class _SpectralCache:
    """Cached eigengap-derived walk lengths keyed by overlay drift."""

    n_nodes: int = -1
    origin: int = -1
    gap: float = 0.0
    mix_length: int = 0
    reset_length: int = 0
    valid: bool = False


class SamplingOperator:
    """Distributed node/tuple sampling via Metropolis walks.

    Parameters
    ----------
    graph:
        The live overlay. A fresh :class:`WalkContext` snapshot is taken
        whenever the graph version or the weight values changed.
    rng:
        Randomness source (all draws flow through it).
    ledger:
        Optional message ledger; walk proposals and sample-return hops are
        recorded on it.
    config:
        See :class:`SamplerConfig`.
    faults:
        Optional :class:`~repro.network.faults.FaultPlan`. The abstract
        sampler executes walks in batch, so faults act at walk
        granularity: a walk whose chain-plus-return message count loses
        any hop (probability ``1 - (1 - loss)**hops``) delivers no
        sample. Losses are recorded on the plan's log; callers see the
        shortfall via partial results, never an exception.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        config: SamplerConfig | None = None,
        faults: FaultPlan | None = None,
        tracer: Tracer | None = None,
        partitions: PartitionPlan | None = None,
    ) -> None:
        self._graph = graph
        self._rng = rng
        self._ledger = ledger
        self._config = config if config is not None else SamplerConfig()
        self._faults = faults
        #: correlated-failure plan; while a partition is open, walks are
        #: confined to the origin's reachable region (the walk must mix
        #: over the population it can actually touch)
        self._partitions = partitions
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if faults is not None:
            bridge_fault_log(faults.log, self._tracer)
        self._spectral = _SpectralCache()
        self._pool_nodes: list[int] = []  # continued-walk positions (node ids)
        self.samples_drawn = 0
        self.walks_started = 0

    @property
    def config(self) -> SamplerConfig:
        return self._config

    @property
    def pool_nodes(self) -> list[int]:
        """Current continued-walk agent positions (copy, node ids)."""
        return list(self._pool_nodes)

    # ------------------------------------------------------------------
    # walk-length policy
    # ------------------------------------------------------------------

    def _walk_lengths(self, context: WalkContext, origin: int) -> tuple[int, int]:
        """(full mixing length, reset length) for the current occasion."""
        config = self._config
        if config.walk_length is not None:
            reset = (
                config.reset_length
                if config.reset_length is not None
                else max(1, config.walk_length // 4)
            )
            return config.walk_length, reset
        cache = self._spectral
        drifted = (
            not cache.valid
            or cache.n_nodes <= 0
            or cache.origin != origin
            or abs(context.n_nodes - cache.n_nodes)
            > config.recompute_drift * cache.n_nodes
        )
        if drifted:
            # the eigengap + mixing-length computation is the host-side
            # hot spot of abstract-mode runs; keep it under one profiled
            # section so `repro trace` output can show its wall cost
            with self._tracer.profile("spectral_recompute"):
                self._recompute_spectral(context, origin)
            cache = self._spectral
        return cache.mix_length, cache.reset_length

    def _recompute_spectral(self, context: WalkContext, origin: int) -> None:
        """Refresh the spectral cache for the current overlay snapshot."""
        config = self._config
        matrix = mixing.sparse_transition_matrix(
            context.offsets, context.targets, context.weights, config.laziness
        )
        gap = mixing.eigengap_sparse(matrix)
        if gap <= 0.0:
            raise SamplingError(
                "zero eigengap: the walk cannot converge on this overlay"
            )
        if config.length_policy == "theorem3":
            positive = context.weights[context.weights > 0]
            p_min = float(positive.min() / context.weights.sum())
            mix_length = mixing.mixing_time_bound(gap, p_min, config.gamma)
        else:
            mix_length = self._empirical_mix_length(
                matrix, context, origin, config.gamma
            )
        if mix_length > config.max_walk_length:
            raise SamplingError(
                f"required walk length {mix_length} exceeds the configured "
                f"maximum {config.max_walk_length}"
            )
        reset_length = (
            config.reset_length
            if config.reset_length is not None
            else mixing.relaxation_time(gap)
        )
        self._spectral = _SpectralCache(
            n_nodes=context.n_nodes,
            origin=origin,
            gap=gap,
            mix_length=mix_length,
            reset_length=reset_length,
            valid=True,
        )

    def _empirical_mix_length(
        self,
        matrix: object,  # scipy.sparse matrix
        context: WalkContext,
        origin: int,
        gamma: float,
    ) -> int:
        """Steps until the walk *from this origin* is within ``gamma`` TV.

        Iterates the origin's point-mass distribution with sparse
        vector-matrix products — O(|E|) per step — and returns the first
        step within tolerance.
        """
        target = context.target_distribution()
        distribution = np.zeros(context.n_nodes)
        distribution[context.compact_index(origin)] = 1.0
        transpose = matrix.T.tocsr()
        for step in range(1, self._config.max_walk_length + 1):
            distribution = transpose @ distribution
            if 0.5 * float(np.abs(distribution - target).sum()) <= gamma:
                return step
        raise SamplingError(
            f"walk from origin {origin} did not mix to gamma={gamma} within "
            f"{self._config.max_walk_length} steps"
        )

    def invalidate_walk_length_cache(self) -> None:
        """Force the next occasion to recompute the spectral walk length."""
        self._spectral = _SpectralCache()

    @property
    def last_eigengap(self) -> float | None:
        """Most recently computed eigengap (None before the first walk)."""
        return self._spectral.gap if self._spectral.valid else None

    # ------------------------------------------------------------------
    # node sampling
    # ------------------------------------------------------------------

    def sample_nodes(
        self,
        weight: WeightFunction,
        n: int,
        origin: int,
    ) -> list[int]:
        """Draw ``n`` sample node ids with probability proportional to weight.

        Runs ``n`` agents in batch mode. With continued walks enabled,
        agents left over from previous occasions resume from their last
        position and only walk the reset length; new agents (and all agents
        when the feature is off) start at ``origin`` and walk the full
        mixing length.
        """
        if n < 0:
            raise SamplingError(f"cannot draw {n} samples")
        if n == 0:
            return []
        if origin not in self._graph:
            raise SamplingError(f"origin node {origin} is not in the overlay")
        span = self._tracer.span(
            SPAN_SAMPLE_ACQUISITION, n_requested=n, origin=origin
        )
        scope: dict[int, int] | None = None
        partitions = self._partitions
        if partitions is not None and partitions.active:
            scope = partitions.reachable(self._graph, origin)
            if len(scope) <= 1:
                # the origin is alone on its side of the cut: the only
                # reachable "sample" is itself, and no walk can leave
                self._tracer.end(
                    span,
                    n_continued=0,
                    n_fresh=n,
                    mix_length=0,
                    reset_length=0,
                    n_delivered=n,
                )
                self.samples_drawn += n
                return [origin] * n
            context = WalkContext.from_subgraph(self._graph, weight, scope)
        else:
            context = WalkContext.from_graph(self._graph, weight)
        mix_length, reset_length = self._walk_lengths(context, origin)
        config = self._config

        continued: list[int] = []
        if config.continued_walks and self._pool_nodes:
            # agents survive only if their node is still in the overlay
            # (and, under a partition, on the origin's side of the cut)
            alive = [
                node
                for node in self._pool_nodes
                if node in self._graph and (scope is None or node in scope)
            ]
            continued = alive[:n]
        n_fresh = n - len(continued)

        final_positions: list[int] = []
        walk_steps: list[int] = []
        if continued:
            starts = np.array(
                [context.compact_index(node) for node in continued], dtype=np.int64
            )
            ends = batch_walk(
                context,
                starts,
                reset_length,
                self._rng,
                self._ledger,
                config.laziness,
            )
            final_positions.extend(int(context.node_ids[e]) for e in ends)
            walk_steps.extend([reset_length] * len(continued))
        if n_fresh > 0:
            starts = np.full(
                n_fresh, context.compact_index(origin), dtype=np.int64
            )
            ends = batch_walk(
                context,
                starts,
                mix_length,
                self._rng,
                self._ledger,
                config.laziness,
            )
            final_positions.extend(int(context.node_ids[e]) for e in ends)
            walk_steps.extend([mix_length] * n_fresh)
            self.walks_started += n_fresh

        if config.continued_walks:
            # pool positions survive even if the *return* message is lost:
            # the agent itself still sits at its final node
            self._pool_nodes = list(final_positions)
        distances: dict[int, int] | None = None
        if self._ledger is not None or self._faults is not None:
            # under a partition the return route is confined to the
            # reachable region, so return-hop accounting uses its BFS
            distances = (
                scope
                if scope is not None
                else self._graph.hop_distances(origin)
            )
        delivered: list[int] = []
        for node, steps in zip(final_positions, walk_steps):
            hops_home = distances.get(node, 0) if distances is not None else 0
            if self._ledger is not None:
                # the messages were sent whether or not any was lost
                self._ledger.record_sample_return(hops_home)
            if self._faults is not None and self._faults.walk_lost(
                steps + hops_home
            ):
                self._faults.record(
                    self._tracer.now(), "walk_lost", node=node
                )
                continue
            delivered.append(node)
        self.samples_drawn += len(delivered)
        # retained-vs-fresh tagging: continued agents only paid the reset
        # length; fresh agents paid the full mixing length from the origin
        self._tracer.end(
            span,
            n_continued=len(continued),
            n_fresh=n_fresh,
            mix_length=mix_length,
            reset_length=reset_length,
            n_delivered=len(delivered),
        )
        return delivered

    # ------------------------------------------------------------------
    # tuple sampling
    # ------------------------------------------------------------------

    def sample_tuples(
        self,
        database: P2PDatabase,
        n: int,
        origin: int,
        max_retries: int = 8,
        allow_partial: bool = False,
    ) -> list[TupleSample]:
        """Two-stage sampling: ``n`` uniformly random tuples from ``R``.

        Stage one samples nodes with ``w_v = m_v``; stage two draws a
        uniform local tuple at each sampled node. Empty nodes have zero
        weight and are sampled only through numerical noise of the walk;
        any such miss (and any walk lost to the fault plan) is retried, up
        to ``max_retries`` rounds. With ``allow_partial=True`` a remaining
        shortfall returns the tuples actually drawn — the evaluator
        degrades its precision — instead of raising.
        """
        if database.n_tuples == 0:
            raise SamplingError("cannot sample tuples from an empty relation")
        weight = content_size_weights(database)
        span = self._tracer.span(
            SPAN_TUPLE_SAMPLING, n_requested=n, origin=origin
        )
        samples: list[TupleSample] = []
        rounds = 0
        need = n
        for _ in range(max_retries):
            if need == 0:
                break
            rounds += 1
            for node in self.sample_nodes(weight, need, origin):
                store = database.store(node)
                if len(store) == 0:
                    continue  # zero-weight node reached; re-draw below
                tuple_id = store.sample_uniform(self._rng)
                samples.append(
                    TupleSample(tuple_id=tuple_id, node=node, row=store.get(tuple_id))
                )
            need = n - len(samples)
        if need > 0:
            if allow_partial:
                if self._faults is not None:
                    self._faults.record(
                        self._tracer.now(),
                        "sample_shortfall",
                        detail=f"{len(samples)} of {n} after {max_retries} rounds",
                    )
                self._tracer.end(
                    span, n_drawn=len(samples), rounds=rounds, partial=True
                )
                return samples
            raise SamplingError(
                f"failed to draw {n} tuples after {max_retries} rounds "
                f"({len(samples)} drawn); is the relation mostly empty?"
            )
        self._tracer.end(span, n_drawn=len(samples), rounds=rounds, partial=False)
        return samples

    def cluster_sample(
        self, database: P2PDatabase, origin: int
    ) -> tuple[int, list[TupleSample]]:
        """Cluster sampling: one node (uniform) and its entire fragment.

        Provided for the two-stage-vs-cluster ablation (Section III argues
        intra-node correlation makes this imprecise for P2P content).
        """
        from repro.sampling.weights import uniform_weights

        node = self.sample_nodes(uniform_weights(), 1, origin)[0]
        store = database.store(node)
        batch = [
            TupleSample(tuple_id=tuple_id, node=node, row=dict(row))
            for tuple_id, row in store.iter_rows()
        ]
        return node, batch

    def reset_pool(self) -> None:
        """Drop continued-walk state (e.g. between independent experiments)."""
        self._pool_nodes = []
