"""Metropolis forwarding probabilities (Section V-A, Eq. 12).

The Metropolis construction turns a uniform neighbor proposal into a walk
whose stationary distribution matches an arbitrary target ``p_v ~ w_v``:

* at node ``i``, propose a uniformly random neighbor ``j`` (probability
  ``1/d_i``);
* accept the move with probability ``min(1, (w_j * d_i) / (w_i * d_j))``;
* a laziness factor of 1/2 (stay put with probability 1/2 before anything
  else) makes the chain aperiodic on any graph, bipartite or not.

So the off-diagonal forwarding probability is::

    P_ij = (1/2) * (1/d_i) * min(1, (w_j * d_i) / (w_i * d_j))
         = (1/2) * min(1/d_i, w_j / (w_i * d_j))

and ``P_ii`` absorbs the rest. Detailed balance ``p_i P_ij = p_j P_ji``
holds because ``w_i * min(1/d_i, w_j/(w_i d_j)) = min(w_i/d_i, w_j/d_j)``
is symmetric in ``(i, j)``; combined with irreducibility (the proposal
graph is the connected overlay) and aperiodicity (laziness), Theorem 1
gives convergence to ``p_v`` from any start.

Only the ratio ``w_j / w_i`` enters ``P_ij`` — each node computes its
forwarding row from its neighbors' advertised weights, with no global
normalization (the property the paper emphasizes).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError, TopologyError
from repro.network.graph import OverlayGraph
from repro.sampling.weights import WeightFunction, validate_weights


def acceptance_probability(
    weight_i: float, degree_i: int, weight_j: float, degree_j: int
) -> float:
    """Metropolis acceptance ``min(1, (w_j * d_i) / (w_i * d_j))``.

    A zero-weight current node accepts every proposal (the walk should
    leave a state the target assigns no mass) — the limit of the ratio as
    ``w_i -> 0``.
    """
    if degree_i < 1 or degree_j < 1:
        raise SamplingError(
            f"degrees must be positive (got d_i={degree_i}, d_j={degree_j})"
        )
    if weight_i < 0 or weight_j < 0:
        raise SamplingError(
            f"weights must be non-negative (got w_i={weight_i}, w_j={weight_j})"
        )
    if weight_i == 0.0:
        return 1.0
    return min(1.0, (weight_j * degree_i) / (weight_i * degree_j))


def metropolis_matrix(
    graph: OverlayGraph,
    weight: WeightFunction,
    laziness: float = 0.5,
) -> tuple[np.ndarray, np.ndarray]:
    """Dense forwarding matrix ``P`` for analysis and testing.

    Returns ``(node_ids, P)`` where ``P[a, b]`` is the transition
    probability from ``node_ids[a]`` to ``node_ids[b]``. Dense is fine at
    the scales the experiments use (hundreds to a few thousand nodes); the
    walker never materializes this matrix.

    ``laziness`` is the self-loop mass added for aperiodicity; the paper
    uses 1/2. ``laziness=0`` is allowed for ablation (beware bipartite
    graphs).
    """
    if not 0.0 <= laziness < 1.0:
        raise SamplingError(f"laziness must be in [0, 1), got {laziness}")
    node_ids = np.array(graph.nodes(), dtype=np.int64)
    if node_ids.size == 0:
        raise TopologyError("cannot build a transition matrix on an empty graph")
    validate_weights(weight, node_ids.tolist())
    index_of = {int(node): a for a, node in enumerate(node_ids)}
    n = node_ids.size
    matrix = np.zeros((n, n), dtype=float)
    move_mass = 1.0 - laziness
    for a, node in enumerate(node_ids):
        i = int(node)
        degree_i = graph.degree(i)
        weight_i = weight(i)
        if degree_i == 0:
            matrix[a, a] = 1.0
            continue
        proposal = move_mass / degree_i
        for j in graph.neighbors(i):
            accept = acceptance_probability(
                weight_i, degree_i, weight(j), graph.degree(j)
            )
            matrix[a, index_of[j]] = proposal * accept
        matrix[a, a] = 1.0 - matrix[a].sum()
    return node_ids, matrix


def stationary_distribution(
    graph: OverlayGraph, weight: WeightFunction
) -> tuple[np.ndarray, np.ndarray]:
    """Target distribution ``p_v = w_v / sum_u w_u`` over the live nodes.

    Returns ``(node_ids, probabilities)`` aligned with
    :func:`metropolis_matrix`'s ordering.
    """
    node_ids = np.array(graph.nodes(), dtype=np.int64)
    weights = np.array([weight(int(node)) for node in node_ids], dtype=float)
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise SamplingError("weights must be finite and non-negative")
    total = weights.sum()
    if total <= 0:
        raise SamplingError("all node weights are zero")
    return node_ids, weights / total
