"""Random-walk sampling agents.

A sampling agent starts at the originating node and is forwarded from node
to node with the Metropolis probabilities until the walk has mixed; the
node it then sits on is the sample (Section V). Two implementations share
one immutable :class:`WalkContext` snapshot of the overlay:

* :class:`MetropolisWalker` — a single agent, stepped one transition at a
  time. Used by tests and by callers that need per-step introspection.
* :func:`batch_walk` — many agents advanced in lock-step with vectorized
  numpy operations. This is the paper's "batch mode" (Section VI-A): to
  derive ``n`` samples, ``n`` walks run with overlapping convergence time.

Cost model: every *proposal* costs one message (the agent, carrying the
weight probe, crosses one overlay link; a rejected proposal still crossed
the link and must hop back, which we conservatively count as the same one
message the paper's per-step accounting uses). Lazy self-loops are decided
locally and are free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import SamplingError, TopologyError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.sampling.weights import WeightFunction


@dataclass(frozen=True)
class WalkContext:
    """Immutable snapshot of the overlay for one sampling occasion.

    The paper assumes the network is effectively static within a sampling
    occasion (Section II); the context freezes topology and weights so all
    walks of the occasion see one consistent graph. ``graph_version``
    records which overlay version was frozen, letting the operator detect
    staleness.
    """

    node_ids: np.ndarray  # compact index -> node id
    offsets: np.ndarray  # CSR row offsets
    targets: np.ndarray  # CSR neighbor compact indices
    degrees: np.ndarray  # degree per compact index
    weights: np.ndarray  # weight per compact index
    graph_version: int

    @classmethod
    def from_graph(
        cls, graph: OverlayGraph, weight: WeightFunction
    ) -> "WalkContext":
        node_ids, offsets, targets = graph.csr()
        degrees = np.diff(offsets)
        if np.any(degrees == 0) and node_ids.size > 1:
            isolated = node_ids[degrees == 0]
            raise TopologyError(
                f"overlay has isolated nodes {isolated[:5].tolist()}; "
                "the sampling walk cannot reach or leave them"
            )
        weights = np.array([weight(int(node)) for node in node_ids], dtype=float)
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise SamplingError("weights must be finite and non-negative")
        if weights.sum() <= 0:
            raise SamplingError("all node weights are zero")
        return cls(
            node_ids=node_ids,
            offsets=offsets,
            targets=targets,
            degrees=degrees.astype(np.int64),
            weights=weights,
            graph_version=graph.version,
        )

    @classmethod
    def from_subgraph(
        cls,
        graph: OverlayGraph,
        weight: WeightFunction,
        nodes: Iterable[int],
    ) -> "WalkContext":
        """Snapshot of the subgraph induced by ``nodes``.

        Used when a partition confines sampling to the origin's reachable
        region: the walk must mix over the population it can actually
        touch, not the full (momentarily fictional) overlay. Edges whose
        far endpoint falls outside ``nodes`` are dropped; the remaining
        subgraph must leave no member isolated (a reachable-set scope is
        connected by construction, so this only trips on bad callers).
        """
        node_ids = np.array(sorted(int(node) for node in nodes), dtype=np.int64)
        if node_ids.size == 0:
            raise SamplingError("cannot build a walk context over no nodes")
        member = set(node_ids.tolist())
        offsets = np.zeros(node_ids.size + 1, dtype=np.int64)
        kept: list[int] = []
        for i, node in enumerate(node_ids):
            local = [
                neighbor
                for neighbor in graph.neighbors(int(node))
                if neighbor in member
            ]
            offsets[i + 1] = offsets[i] + len(local)
            kept.extend(local)
        index_of = {int(node): i for i, node in enumerate(node_ids)}
        targets = np.array(
            [index_of[neighbor] for neighbor in kept], dtype=np.int64
        )
        degrees = np.diff(offsets)
        if np.any(degrees == 0) and node_ids.size > 1:
            isolated = node_ids[degrees == 0]
            raise TopologyError(
                f"scope leaves nodes {isolated[:5].tolist()} isolated; "
                "a sampling scope must be internally connected"
            )
        weights = np.array([weight(int(node)) for node in node_ids], dtype=float)
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise SamplingError("weights must be finite and non-negative")
        if weights.sum() <= 0:
            raise SamplingError("all node weights are zero")
        return cls(
            node_ids=node_ids,
            offsets=offsets,
            targets=targets,
            degrees=degrees.astype(np.int64),
            weights=weights,
            graph_version=graph.version,
        )

    @property
    def n_nodes(self) -> int:
        return int(self.node_ids.size)

    def compact_index(self, node: int) -> int:
        """Compact index of overlay node id ``node``."""
        position = int(np.searchsorted(self.node_ids, node))
        if position >= self.node_ids.size or self.node_ids[position] != node:
            raise SamplingError(f"node {node} is not in this walk context")
        return position

    def target_distribution(self) -> np.ndarray:
        """The normalized stationary law ``p_v`` over compact indices."""
        return self.weights / self.weights.sum()


class MetropolisWalker:
    """A single Metropolis sampling agent over a :class:`WalkContext`."""

    def __init__(
        self,
        context: WalkContext,
        start_node: int,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        laziness: float = 0.5,
    ) -> None:
        if not 0.0 <= laziness < 1.0:
            raise SamplingError(f"laziness must be in [0, 1), got {laziness}")
        self._context = context
        self._rng = rng
        self._ledger = ledger
        self._laziness = laziness
        self._position = context.compact_index(start_node)
        self.steps_taken = 0
        self.proposals_sent = 0

    @property
    def position(self) -> int:
        """Current node id the agent sits on."""
        return int(self._context.node_ids[self._position])

    def step(self) -> int:
        """One chain transition; returns the (possibly unchanged) node id."""
        context = self._context
        self.steps_taken += 1
        if self._laziness > 0.0 and self._rng.random() < self._laziness:
            return self.position
        i = self._position
        degree_i = int(context.degrees[i])
        offset = int(context.offsets[i])
        j = int(context.targets[offset + int(self._rng.integers(degree_i))])
        self.proposals_sent += 1
        if self._ledger is not None:
            self._ledger.record_walk_steps(1)
        weight_i = context.weights[i]
        weight_j = context.weights[j]
        degree_j = int(context.degrees[j])
        if weight_i == 0.0:
            accept = 1.0
        else:
            accept = min(1.0, (weight_j * degree_i) / (weight_i * degree_j))
        if self._rng.random() < accept:
            self._position = j
        return self.position

    def walk(self, steps: int) -> int:
        """Advance ``steps`` transitions; returns the final node id."""
        if steps < 0:
            raise SamplingError(f"steps must be >= 0, got {steps}")
        for _ in range(steps):
            self.step()
        return self.position


def batch_walk(
    context: WalkContext,
    start_positions: np.ndarray,
    steps: int,
    rng: np.random.Generator,
    ledger: MessageLedger | None = None,
    laziness: float = 0.5,
) -> np.ndarray:
    """Advance many agents ``steps`` transitions in lock-step.

    ``start_positions`` holds *compact indices* (see
    :meth:`WalkContext.compact_index`); the return value is the final
    compact indices. All agents share the frozen context, so this is
    exactly ``k`` independent chains, vectorized per transition.
    """
    if steps < 0:
        raise SamplingError(f"steps must be >= 0, got {steps}")
    if not 0.0 <= laziness < 1.0:
        raise SamplingError(f"laziness must be in [0, 1), got {laziness}")
    positions = np.array(start_positions, dtype=np.int64, copy=True)
    if positions.size == 0 or steps == 0:
        return positions
    n_walkers = positions.size
    proposals_sent = 0
    weights = context.weights
    degrees = context.degrees
    offsets = context.offsets
    targets = context.targets
    for _ in range(steps):
        if laziness > 0.0:
            active = rng.random(n_walkers) >= laziness
            if not np.any(active):
                continue
        else:
            active = np.ones(n_walkers, dtype=bool)
        current = positions[active]
        degree_i = degrees[current]
        picks = (rng.random(current.size) * degree_i).astype(np.int64)
        proposed = targets[offsets[current] + picks]
        proposals_sent += int(current.size)
        weight_i = weights[current]
        weight_j = weights[proposed]
        ratio = np.empty(current.size, dtype=float)
        zero_mask = weight_i == 0.0
        ratio[zero_mask] = 1.0
        safe = ~zero_mask
        ratio[safe] = (weight_j[safe] * degree_i[safe]) / (
            weight_i[safe] * degrees[proposed[safe]]
        )
        accepted = rng.random(current.size) < np.minimum(1.0, ratio)
        moved = current.copy()
        moved[accepted] = proposed[accepted]
        positions[active] = moved
    if ledger is not None:
        ledger.record_walk_steps(proposals_sent)
    return positions
