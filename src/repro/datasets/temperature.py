"""Synthetic TEMPERATURE workload (JPL/NASA weather-station surrogate).

Each sensor unit ``i`` reports, every 12-hour step::

    y_i(t) = base + seasonal(t) + diurnal(t) + b_i + e_i(t)

* ``seasonal``/``diurnal`` — shared smooth sinusoids (annual and daily
  cycles) that make the *aggregate* a smooth, extrapolatable function of
  time (what PRED-k exploits), plus a shared AR(1) "weather-system" jitter
  (``common_noise_sigma``) that gives the aggregate the unpredictable
  step-to-step component real traces have — it is what keeps PRED-k from
  skipping anything when ``delta`` is below the jitter scale (the left end
  of Figure 4-a). Being common to all units, it leaves the cross-sectional
  calibration (rho, sigma) untouched;
* ``b_i`` — persistent per-unit offset (station climate), variance
  ``sigma_between^2``;
* ``e_i`` — AR(1) weather noise with coefficient ``ar_coefficient`` and
  stationary variance ``sigma_noise^2``. Innovations are a *sparse shock
  mixture*: with probability ``shock_prob`` a unit takes a large weather
  shock, otherwise (almost) none — matching how station temperatures
  actually change (long quiet stretches, occasional fronts). Sparseness
  does not move the (rho, sigma) calibration (an AR(1)'s lag-1
  autocorrelation is ``phi`` for any i.i.d. innovation), but it is what
  gives adaptive filters (the ALL+FILTER baseline) something to exploit:
  dense Gaussian innovations under the same calibration would force
  per-step changes ~ ``sigma * sqrt(2(1-rho))`` ~ 3.75 on every tuple,
  and no filter can save messages when everything moves past epsilon
  every step.

The lag-1 cross-sectional correlation (Table II's rho) is by construction::

    rho ~= (sigma_between^2 + phi * sigma_noise^2)
           / (sigma_between^2 + sigma_noise^2)

and the cross-sectional sigma is ``sqrt(sigma_between^2 + sigma_noise^2)``.
Defaults hit the published rho ~= 0.89, sigma ~= 8 with the published scale
(8000 units / 530 nodes / 1080 twelve-hour steps ~= 18 months); use
:meth:`TemperatureConfig.scaled` for cheaper experiment sizes.

The overlay is a mesh augmented with a small fraction of random long-range
links (grid wiring plus regional uplinks — see
:func:`repro.network.topology.augmented_mesh_topology` for why a literal
grid cannot reproduce the paper's measured per-sample cost) and there is no
churn ("almost stable").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.datasets.base import DatasetInstance, distribute_units
from repro.db.relation import P2PDatabase, Schema
from repro.errors import SimulationError
from repro.network.graph import OverlayGraph
from repro.network.topology import augmented_mesh_topology

ATTRIBUTE = "temperature"


@dataclass(frozen=True)
class TemperatureConfig:
    """Generator parameters; defaults reproduce Table II's TEMPERATURE row."""

    n_nodes: int = 530
    n_units: int = 8000
    n_steps: int = 1080  # 18 months at 2 updates/day
    steps_per_day: int = 2
    steps_per_year: int = 730
    base: float = 60.0
    seasonal_amplitude: float = 15.0
    diurnal_amplitude: float = 1.0  # residual day/night signal (smoothed readings)
    long_link_fraction: float = 0.2  # regional uplinks on top of the grid
    sigma_between: float = 4.135  # persistent station offsets
    sigma_noise: float = 6.848  # AR(1) weather noise
    ar_coefficient: float = 0.85
    shock_prob: float = 0.1  # fraction of units hit by a shock per step
    common_noise_sigma: float = 2.0  # shared weather-system jitter
    common_noise_ar: float = 0.8

    def __post_init__(self) -> None:
        if self.n_nodes < 2 or self.n_units < self.n_nodes:
            raise SimulationError(
                "need >= 2 nodes and at least one unit per node "
                f"(n_nodes={self.n_nodes}, n_units={self.n_units})"
            )
        if not 0.0 <= self.ar_coefficient < 1.0:
            raise SimulationError(
                f"ar_coefficient must be in [0, 1), got {self.ar_coefficient}"
            )
        if self.sigma_between < 0 or self.sigma_noise < 0:
            raise SimulationError("sigmas must be non-negative")
        if not 0.0 < self.shock_prob <= 1.0:
            raise SimulationError(
                f"shock_prob must be in (0, 1], got {self.shock_prob}"
            )

    @property
    def expected_sigma(self) -> float:
        """Cross-sectional std the generator is calibrated to (~8)."""
        return math.sqrt(self.sigma_between**2 + self.sigma_noise**2)

    @property
    def expected_rho(self) -> float:
        """Lag-1 cross-sectional correlation it is calibrated to (~0.89)."""
        total = self.sigma_between**2 + self.sigma_noise**2
        if total == 0:
            return 0.0
        return (
            self.sigma_between**2 + self.ar_coefficient * self.sigma_noise**2
        ) / total

    def scaled(self, factor: float) -> "TemperatureConfig":
        """Proportionally smaller instance (same calibration targets)."""
        if not 0.0 < factor <= 1.0:
            raise SimulationError(f"scale factor must be in (0, 1], got {factor}")
        return replace(
            self,
            n_nodes=max(4, int(self.n_nodes * factor)),
            n_units=max(8, int(self.n_units * factor)),
            n_steps=max(16, int(self.n_steps * factor)),
        )


class TemperatureInstance(DatasetInstance):
    """Live TEMPERATURE world: call :meth:`step` once per 12-hour step."""

    def __init__(self, config: TemperatureConfig, rng: np.random.Generator) -> None:
        edges = augmented_mesh_topology(
            config.n_nodes, config.long_link_fraction, rng
        )
        graph = OverlayGraph(edges, n_nodes=config.n_nodes)
        database = P2PDatabase(Schema((ATTRIBUTE,)), graph.nodes())
        super().__init__(graph, database, ATTRIBUTE, config.n_steps)
        self.config = config
        self._rng = rng
        assignment = distribute_units(config.n_units, graph.nodes(), rng)
        self._offsets = rng.normal(0.0, config.sigma_between, config.n_units)
        self._noise = rng.normal(0.0, config.sigma_noise, config.n_units)
        self._common_noise = float(rng.normal(0.0, config.common_noise_sigma))
        self._tuple_ids = np.empty(config.n_units, dtype=np.int64)
        initial = self._signal(0) + self._common_noise + self._offsets + self._noise
        for unit in range(config.n_units):
            self._tuple_ids[unit] = database.insert(
                assignment[unit], {ATTRIBUTE: float(initial[unit])}
            )

    def _signal(self, time: int) -> float:
        """Shared smooth component at ``time`` (seasonal + diurnal)."""
        config = self.config
        seasonal = config.seasonal_amplitude * math.sin(
            2.0 * math.pi * time / config.steps_per_year
        )
        diurnal = config.diurnal_amplitude * math.sin(
            2.0 * math.pi * time / config.steps_per_day + 0.5
        )
        return config.base + seasonal + diurnal

    def expected_average(self, time: int) -> float:
        """The smooth component the oracle aggregate tracks (for tests)."""
        return self._signal(time)

    def step(self, time: int) -> None:
        """Advance every unit one 12-hour step and write the new readings."""
        self._check_step(time)
        if time == 0:
            return  # initial values already materialized at construction
        config = self.config
        innovation_sigma = config.sigma_noise * math.sqrt(
            1.0 - config.ar_coefficient**2
        )
        # sparse shock mixture with the same total innovation variance:
        # Bernoulli(shock_prob) * N(0, innovation_sigma^2 / shock_prob)
        shocks = self._rng.random(config.n_units) < config.shock_prob
        innovations = np.zeros(config.n_units)
        if np.any(shocks):
            innovations[shocks] = self._rng.normal(
                0.0,
                innovation_sigma / math.sqrt(config.shock_prob),
                int(shocks.sum()),
            )
        self._noise = config.ar_coefficient * self._noise + innovations
        common_innovation = config.common_noise_sigma * math.sqrt(
            1.0 - config.common_noise_ar**2
        )
        self._common_noise = config.common_noise_ar * self._common_noise + float(
            self._rng.normal(0.0, common_innovation)
        )
        values = self._signal(time) + self._common_noise + self._offsets + self._noise
        database = self.database
        for unit in range(config.n_units):
            database.update(
                int(self._tuple_ids[unit]), {ATTRIBUTE: float(values[unit])}
            )


class TemperatureDataset:
    """Factory tying a :class:`TemperatureConfig` to a seed."""

    def __init__(self, config: TemperatureConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else TemperatureConfig()
        self.seed = seed

    def build(self) -> TemperatureInstance:
        return TemperatureInstance(self.config, np.random.default_rng(self.seed))
