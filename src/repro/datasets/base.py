"""Shared workload machinery.

A *dataset instance* owns the overlay graph and the P2P database and knows
how to advance the world by one time step (tuple updates, and for churning
workloads node joins/leaves). Experiments interleave ``instance.step(t)``
with engine/baseline steps.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.db.expression import Expression
from repro.db.relation import P2PDatabase
from repro.errors import SimulationError
from repro.network.graph import OverlayGraph


def distribute_units(
    n_units: int, nodes: list[int], rng: np.random.Generator
) -> dict[int, int]:
    """Assign ``n_units`` units to nodes, at least one per node when possible.

    Mirrors the paper's workloads where a node hosts "one or more" units:
    every node gets one unit first (so no empty fragments), the remainder
    land multinomially, giving the skewed ``m_v`` distribution two-stage
    sampling exists to handle. Returns ``unit -> node``.
    """
    if n_units < 1:
        raise SimulationError(f"need at least one unit, got {n_units}")
    if not nodes:
        raise SimulationError("need at least one node")
    assignment: dict[int, int] = {}
    unit = 0
    for node in nodes:
        if unit >= n_units:
            break
        assignment[unit] = node
        unit += 1
    remaining = n_units - unit
    if remaining > 0:
        picks = rng.integers(0, len(nodes), size=remaining)
        for offset, pick in enumerate(picks):
            assignment[unit + offset] = nodes[int(pick)]
    return assignment


class DatasetInstance(abc.ABC):
    """A live simulated workload: overlay + database + update process."""

    def __init__(
        self,
        graph: OverlayGraph,
        database: P2PDatabase,
        attribute: str,
        n_steps: int,
    ) -> None:
        self.graph = graph
        self.database = database
        self.attribute = attribute
        self.n_steps = n_steps
        self._expression = Expression(attribute)
        self._last_step = -1

    @property
    def expression(self) -> Expression:
        """The single-attribute expression the canonical AVG query uses."""
        return self._expression

    @abc.abstractmethod
    def step(self, time: int) -> None:
        """Advance the world to time ``time`` (apply its updates/churn)."""

    def _check_step(self, time: int) -> None:
        if time != self._last_step + 1:
            raise SimulationError(
                f"steps must be consecutive: got {time} after {self._last_step}"
            )
        self._last_step = time

    def true_average(self) -> float:
        """Oracle AVG of the attribute over the current relation."""
        values = self.database.exact_values(self._expression)
        if values.size == 0:
            raise SimulationError("relation is empty")
        return float(values.mean())

    def current_values(self) -> np.ndarray:
        """Oracle snapshot of every tuple's attribute value."""
        return self.database.exact_values(self._expression)

    def current_values_by_id(self) -> dict[int, float]:
        """Oracle snapshot keyed by tuple id (for churn-safe pairing)."""
        return {
            tuple_id: row[self.attribute]
            for tuple_id, _, row in self.database.iter_tuples()
        }


def lag1_correlation_matched(
    previous: dict[int, float], current: dict[int, float]
) -> float:
    """Lag-1 correlation over tuples present in *both* snapshots.

    Under churn the tuple sets differ between steps; pairing by position
    (as :func:`lag1_correlation` does) silently compares unrelated tuples
    and underestimates rho. Matching by tuple id measures the quantity
    Table II actually reports.
    """
    common = sorted(set(previous) & set(current))
    if len(common) < 2:
        raise SimulationError("need >= 2 surviving tuples to correlate")
    return lag1_correlation(
        np.array([previous[t] for t in common]),
        np.array([current[t] for t in common]),
    )


def lag1_correlation(previous: np.ndarray, current: np.ndarray) -> float:
    """Cross-sectional correlation between consecutive snapshots.

    This is the ``rho`` of Table II: the correlation across tuples between
    their values at successive occasions (the quantity repeated sampling's
    regression exploits).
    """
    previous = np.asarray(previous, dtype=float)
    current = np.asarray(current, dtype=float)
    if previous.size != current.size or previous.size < 2:
        raise SimulationError("need two equal-length snapshots of size >= 2")
    prev_centered = previous - previous.mean()
    curr_centered = current - current.mean()
    denominator = np.sqrt((prev_centered**2).sum() * (curr_centered**2).sum())
    if denominator == 0:
        return 0.0
    return float((prev_centered * curr_centered).sum() / denominator)
