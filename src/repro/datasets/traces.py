"""Portable trace format: record and replay workloads.

The paper's datasets are logs of timestamped tuple modifications
("whenever the value of the attribute is modified ... a new tuple is
appended to the dataset"). :class:`Trace` is that log:

* :class:`TraceRecorder` captures one from any live
  :class:`~repro.datasets.base.DatasetInstance` (so synthetic runs can be
  frozen and replayed deterministically);
* :func:`replay_trace` applies a trace step-by-step onto a fresh
  graph+database, which is how an *external* dataset in this format would
  be simulated;
* ``save``/``load`` serialize as JSON lines for interchange.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterator

from repro.datasets.base import DatasetInstance
from repro.db.relation import P2PDatabase, Schema
from repro.errors import SimulationError
from repro.network.graph import OverlayGraph

VALID_KINDS = ("insert", "update", "delete", "join", "leave")


@dataclass(frozen=True)
class TraceEvent:
    """One modification: tuple insert/update/delete or node join/leave.

    ``subject`` is a tuple id for tuple events and a node id for membership
    events; ``node`` is the hosting node for inserts (ignored otherwise);
    ``value`` is the new attribute value for insert/update.
    """

    time: int
    kind: str
    subject: int
    node: int | None = None
    value: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in VALID_KINDS:
            raise SimulationError(
                f"unknown event kind {self.kind!r}; expected one of {VALID_KINDS}"
            )
        if self.time < 0:
            raise SimulationError(f"event time must be >= 0, got {self.time}")
        if self.kind == "insert" and (self.node is None or self.value is None):
            raise SimulationError("insert events need both node and value")
        if self.kind == "update" and self.value is None:
            raise SimulationError("update events need a value")


@dataclass
class Trace:
    """An ordered event log plus the static context needed to replay it.

    ``initial_tuples`` maps the time-0 tuple ids to ``(node, value)`` so a
    trace file is fully self-contained.
    """

    attribute: str
    n_steps: int
    initial_edges: list[tuple[int, int]]
    initial_nodes: list[int]
    events: list[TraceEvent]
    initial_tuples: dict[int, tuple[int, float]] = field(default_factory=dict)

    def events_at(self, time: int) -> Iterator[TraceEvent]:
        for event in self.events:
            if event.time == time:
                yield event

    def save(self, path: str | Path) -> None:
        """Write as JSON lines: one header line, then one line per event."""
        path = Path(path)
        with path.open("w") as handle:
            header = {
                "attribute": self.attribute,
                "n_steps": self.n_steps,
                "initial_edges": [list(edge) for edge in self.initial_edges],
                "initial_nodes": self.initial_nodes,
                "initial_tuples": {
                    str(tid): [node, value]
                    for tid, (node, value) in self.initial_tuples.items()
                },
            }
            handle.write(json.dumps(header) + "\n")
            for event in self.events:
                handle.write(json.dumps(asdict(event)) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        path = Path(path)
        with path.open() as handle:
            header = json.loads(handle.readline())
            events = [TraceEvent(**json.loads(line)) for line in handle if line.strip()]
        return cls(
            attribute=header["attribute"],
            n_steps=header["n_steps"],
            initial_edges=[tuple(edge) for edge in header["initial_edges"]],
            initial_nodes=list(header["initial_nodes"]),
            events=events,
            initial_tuples={
                int(tid): (int(node), float(value))
                for tid, (node, value) in header.get("initial_tuples", {}).items()
            },
        )


class TraceRecorder:
    """Capture a trace by diffing a live instance between steps.

    Usage::

        recorder = TraceRecorder(instance)
        for t in range(instance.n_steps):
            instance.step(t)
            recorder.observe(t)
        trace = recorder.finish()
    """

    def __init__(self, instance: DatasetInstance) -> None:
        self._instance = instance
        self._attribute = instance.attribute
        self._initial_edges = instance.graph.edges()
        self._initial_nodes = instance.graph.nodes()
        self._events: list[TraceEvent] = []
        self._known_values: dict[int, float] = {}
        self._known_nodes: set[int] = set(self._initial_nodes)
        self._observed_steps = 0
        self._initial_tuples = {
            tid: (node, row[self._attribute])
            for tid, node, row in instance.database.iter_tuples()
        }
        self._snapshot(time=None)

    def _snapshot(self, time: int | None) -> None:
        """Record the world's diff against the last snapshot."""
        database = self._instance.database
        graph = self._instance.graph
        current_nodes = set(graph.nodes())
        if time is not None:
            for node in sorted(current_nodes - self._known_nodes):
                self._events.append(TraceEvent(time, "join", node))
            for node in sorted(self._known_nodes - current_nodes):
                self._events.append(TraceEvent(time, "leave", node))
        self._known_nodes = current_nodes
        seen: set[int] = set()
        for tuple_id, node, row in database.iter_tuples():
            seen.add(tuple_id)
            value = row[self._attribute]
            known = self._known_values.get(tuple_id)
            if known is None:
                if time is not None:
                    self._events.append(
                        TraceEvent(time, "insert", tuple_id, node=node, value=value)
                    )
                self._known_values[tuple_id] = value
            elif known != value and time is not None:
                self._events.append(
                    TraceEvent(time, "update", tuple_id, value=value)
                )
                self._known_values[tuple_id] = value
        for tuple_id in list(self._known_values):
            if tuple_id not in seen:
                if time is not None:
                    self._events.append(TraceEvent(time, "delete", tuple_id))
                del self._known_values[tuple_id]

    def observe(self, time: int) -> None:
        """Call once after each ``instance.step(time)``."""
        if time == 0:
            # time-0 state is the initial snapshot; nothing changed yet
            self._observed_steps = max(self._observed_steps, 1)
            return
        self._snapshot(time)
        self._observed_steps = max(self._observed_steps, time + 1)

    def finish(self) -> Trace:
        return Trace(
            attribute=self._attribute,
            n_steps=self._observed_steps,
            initial_edges=self._initial_edges,
            initial_nodes=self._initial_nodes,
            events=list(self._events),
            initial_tuples=dict(self._initial_tuples),
        )


class ReplayInstance(DatasetInstance):
    """A :class:`DatasetInstance` driven by a recorded trace."""

    def __init__(self, trace: Trace) -> None:
        graph = OverlayGraph(trace.initial_edges, n_nodes=len(trace.initial_nodes))
        database = P2PDatabase(Schema((trace.attribute,)), graph.nodes())
        super().__init__(graph, database, trace.attribute, trace.n_steps)
        self._trace = trace
        self._id_map: dict[int, int] = {}  # trace tuple id -> live tuple id
        self._events_by_time: dict[int, list[TraceEvent]] = {}
        for event in trace.events:
            self._events_by_time.setdefault(event.time, []).append(event)
        if trace.initial_tuples:
            self.seed_tuples(trace.initial_tuples)

    def seed_tuples(self, rows: dict[int, tuple[int, float]]) -> None:
        """Install initial tuples: ``trace_tuple_id -> (node, value)``."""
        for trace_id, (node, value) in sorted(rows.items()):
            live = self.database.insert(node, {self.attribute: value})
            self._id_map[trace_id] = live

    def step(self, time: int) -> None:
        self._check_step(time)
        for event in self._events_by_time.get(time, ()):
            self._apply(event)

    def _apply(self, event: TraceEvent) -> None:
        attribute = self.attribute
        if event.kind == "join":
            # deterministic bootstrap links: the two lowest-id live nodes
            anchors = sorted(self.graph.nodes())[:2]
            for anchor in anchors:
                if anchor != event.subject:
                    self.graph.add_edge(event.subject, anchor)
            self.database.add_node(event.subject)
        elif event.kind == "leave":
            if event.subject in self.graph:
                for tid, live in list(self._id_map.items()):
                    if self.database.locate(live) == event.subject:
                        del self._id_map[tid]
                self.database.remove_node(event.subject)
                self.graph.leave(event.subject)
        elif event.kind == "insert":
            live = self.database.insert(event.node, {attribute: event.value})
            self._id_map[event.subject] = live
        elif event.kind == "update":
            live = self._id_map.get(event.subject)
            if live is not None and live in self.database:
                self.database.update(live, {attribute: event.value})
        elif event.kind == "delete":
            live = self._id_map.pop(event.subject, None)
            if live is not None and live in self.database:
                self.database.delete(live)


def replay_trace(trace: Trace) -> ReplayInstance:
    """Build a fresh replayable instance from ``trace``."""
    return ReplayInstance(trace)
