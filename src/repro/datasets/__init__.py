"""Workloads: synthetic equivalents of the paper's two real datasets.

The paper evaluates on two private traces (Table II):

* **TEMPERATURE** — JPL/NASA weather stations: 8000 sensor units on 530
  nodes, 18 months at a 12-hour update period, lag-1 tuple correlation
  rho ~= 0.89, cross-sectional sigma ~= 8, mesh overlay, almost no churn.
* **MEMORY** — SETI@HOME: 1000 computing units on 820 nodes, 1 hour of
  continuous updates, rho ~= 0.68, sigma ~= 10, power-law overlay,
  frequent churn.

Neither trace is public, so :mod:`repro.datasets.temperature` and
:mod:`repro.datasets.memory` generate synthetic processes *calibrated to
the published parameters* — the algorithms interact with a workload only
through the smoothness of the aggregate and the tuple-level lag
correlation, both of which are matched by construction (see DESIGN.md,
"Substitutions"). :mod:`repro.datasets.traces` adds a portable trace
format so captured or external workloads can be replayed.
"""

from repro.datasets.base import DatasetInstance, distribute_units
from repro.datasets.memory import MemoryConfig, MemoryDataset
from repro.datasets.temperature import TemperatureConfig, TemperatureDataset
from repro.datasets.traces import Trace, TraceEvent, TraceRecorder, replay_trace

__all__ = [
    "DatasetInstance",
    "MemoryConfig",
    "MemoryDataset",
    "TemperatureConfig",
    "TemperatureDataset",
    "Trace",
    "TraceEvent",
    "TraceRecorder",
    "distribute_units",
    "replay_trace",
]
