"""Synthetic MEMORY workload (SETI@HOME surrogate).

Each computing unit reports its currently available memory every step::

    y_i(t) = mean + load(t) + b_i + e_i(t)

* ``load(t)`` — a shared slow sinusoid (system-wide demand swing) keeping
  the aggregate smooth enough to extrapolate;
* ``b_i`` — persistent per-unit offset (machine size), variance
  ``sigma_between^2``;
* ``e_i`` — AR(1) with *jump innovations*: with probability ``jump_prob``
  the innovation is a large task start/finish jump, otherwise small
  Gaussian drift. The innovation variance is normalized so the stationary
  variance stays ``sigma_noise^2`` and the lag-1 correlation calibration
  matches Table II's rho ~= 0.68, sigma ~= 10.

Unlike TEMPERATURE, the overlay is a power-law graph and it *churns*:
nodes depart (taking their tuples) and fresh nodes join with new units —
the dynamics that make repeated sampling replace part of its sample-set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from repro.datasets.base import DatasetInstance, distribute_units
from repro.db.relation import P2PDatabase, Schema
from repro.errors import SimulationError
from repro.network.churn import ChurnConfig, ChurnProcess
from repro.network.graph import OverlayGraph
from repro.network.topology import power_law_topology

ATTRIBUTE = "available_memory"


@dataclass(frozen=True)
class MemoryConfig:
    """Generator parameters; defaults reproduce Table II's MEMORY row."""

    n_nodes: int = 820
    n_units: int = 1000
    n_steps: int = 512
    mean: float = 100.0
    load_amplitude: float = 8.0
    load_period: int = 256
    sigma_between: float = 7.37  # persistent machine-size offsets
    sigma_noise: float = 6.76  # AR(1)+jump noise
    ar_coefficient: float = 0.3
    common_noise_sigma: float = 1.0  # shared demand jitter
    common_noise_ar: float = 0.4
    jump_prob: float = 0.05
    jump_scale: float = 3.0  # jump stddev as a multiple of the base innovation
    leave_probability: float = 0.002
    churn_links: int = 2
    power_law_alpha: float = 2.5

    def __post_init__(self) -> None:
        if self.n_nodes < 4:
            raise SimulationError(f"need >= 4 nodes, got {self.n_nodes}")
        if self.n_units < 1:
            raise SimulationError(f"need >= 1 unit, got {self.n_units}")
        if not 0.0 <= self.ar_coefficient < 1.0:
            raise SimulationError(
                f"ar_coefficient must be in [0, 1), got {self.ar_coefficient}"
            )
        if not 0.0 <= self.jump_prob < 1.0:
            raise SimulationError(
                f"jump_prob must be in [0, 1), got {self.jump_prob}"
            )
        if not 0.0 <= self.leave_probability < 0.5:
            raise SimulationError(
                f"leave_probability must be in [0, 0.5), got "
                f"{self.leave_probability}"
            )

    @property
    def expected_sigma(self) -> float:
        """Cross-sectional std the generator is calibrated to (~10)."""
        return math.sqrt(self.sigma_between**2 + self.sigma_noise**2)

    @property
    def expected_rho(self) -> float:
        """Lag-1 cross-sectional correlation it is calibrated to (~0.68)."""
        total = self.sigma_between**2 + self.sigma_noise**2
        if total == 0:
            return 0.0
        return (
            self.sigma_between**2 + self.ar_coefficient * self.sigma_noise**2
        ) / total

    def scaled(self, factor: float) -> "MemoryConfig":
        """Proportionally smaller instance (same calibration targets)."""
        if not 0.0 < factor <= 1.0:
            raise SimulationError(f"scale factor must be in (0, 1], got {factor}")
        return replace(
            self,
            n_nodes=max(8, int(self.n_nodes * factor)),
            n_units=max(8, int(self.n_units * factor)),
            n_steps=max(16, int(self.n_steps * factor)),
        )


@dataclass
class _UnitState:
    """Per-unit generator state (dict-keyed because units churn)."""

    tuple_id: int
    offset: float
    noise: float


class MemoryInstance(DatasetInstance):
    """Live MEMORY world with churn; call :meth:`step` once per step."""

    def __init__(self, config: MemoryConfig, rng: np.random.Generator) -> None:
        edges = power_law_topology(
            config.n_nodes, alpha=config.power_law_alpha, rng=rng
        )
        graph = OverlayGraph(edges, n_nodes=config.n_nodes)
        database = P2PDatabase(Schema((ATTRIBUTE,)), graph.nodes())
        super().__init__(graph, database, ATTRIBUTE, config.n_steps)
        self.config = config
        self._rng = rng
        self._units: dict[int, _UnitState] = {}
        self._next_unit = 0
        self._common_noise = float(rng.normal(0.0, config.common_noise_sigma))
        # the querying node(s) must survive churn; experiments protect theirs
        self._churn = ChurnProcess(
            graph,
            ChurnConfig(
                leave_probability=config.leave_probability,
                join_rate=config.leave_probability * config.n_nodes,
                n_links=config.churn_links,
                min_nodes=max(4, config.n_nodes // 2),
            ),
            rng,
        )
        self.tuples_lost_to_churn = 0
        self.nodes_joined = 0
        self.nodes_left = 0
        assignment = distribute_units(config.n_units, graph.nodes(), rng)
        for unit, node in assignment.items():
            self._spawn_unit(node, time=0)
            del unit  # ids come from _next_unit; assignment order is enough

    @property
    def churn(self) -> ChurnProcess:
        """The churn process (protect the querying node through this)."""
        return self._churn

    def n_units_live(self) -> int:
        return len(self._units)

    # ------------------------------------------------------------------
    # generator internals
    # ------------------------------------------------------------------

    def _load(self, time: int) -> float:
        config = self.config
        return (
            config.mean
            + config.load_amplitude
            * math.sin(2.0 * math.pi * time / config.load_period)
            + self._common_noise
        )

    def expected_average(self, time: int) -> float:
        """The smooth shared component (for tests)."""
        return self._load(time)

    def _innovation(self, count: int) -> np.ndarray:
        """AR(1) innovations with jump mixture, variance-normalized."""
        config = self.config
        target_var = config.sigma_noise**2 * (1.0 - config.ar_coefficient**2)
        # mixture: N(0, s^2) w.p. 1-p, N(0, (ks)^2) w.p. p; solve for s
        p, k = config.jump_prob, config.jump_scale
        base_var = target_var / ((1.0 - p) + p * k * k)
        draws = self._rng.normal(0.0, math.sqrt(base_var), count)
        jumps = self._rng.random(count) < p
        draws[jumps] *= k
        return draws

    def _spawn_unit(self, node: int, time: int) -> int:
        config = self.config
        unit = self._next_unit
        self._next_unit += 1
        offset = float(self._rng.normal(0.0, config.sigma_between))
        noise = float(self._rng.normal(0.0, config.sigma_noise))
        value = max(0.0, self._load(time) + offset + noise)
        tuple_id = self.database.insert(node, {ATTRIBUTE: value})
        self._units[unit] = _UnitState(tuple_id, offset, noise)
        return unit

    # ------------------------------------------------------------------
    # world advancement
    # ------------------------------------------------------------------

    def step(self, time: int) -> None:
        """One step: churn first, then every surviving unit updates."""
        self._check_step(time)
        if time == 0:
            return
        config = self.config
        common_innovation = config.common_noise_sigma * math.sqrt(
            1.0 - config.common_noise_ar**2
        )
        self._common_noise = config.common_noise_ar * self._common_noise + float(
            self._rng.normal(0.0, common_innovation)
        )
        event = self._churn.step()
        if not event.is_empty:
            lost = set(self.database.handle_churn(event))
            self.tuples_lost_to_churn += len(lost)
            self.nodes_joined += len(event.joined)
            self.nodes_left += len(event.left)
            if lost:
                self._units = {
                    unit: state
                    for unit, state in self._units.items()
                    if state.tuple_id not in lost
                }
            for node in event.joined:
                arrivals = 1 + int(self._rng.poisson(0.2))
                for _ in range(arrivals):
                    self._spawn_unit(node, time)
        units = list(self._units.items())
        innovations = self._innovation(len(units))
        load = self._load(time)
        for (unit, state), innovation in zip(units, innovations):
            state.noise = config.ar_coefficient * state.noise + float(innovation)
            value = max(0.0, load + state.offset + state.noise)
            self.database.update(state.tuple_id, {ATTRIBUTE: value})


class MemoryDataset:
    """Factory tying a :class:`MemoryConfig` to a seed."""

    def __init__(self, config: MemoryConfig | None = None, seed: int = 0) -> None:
        self.config = config if config is not None else MemoryConfig()
        self.seed = seed

    def build(self) -> MemoryInstance:
        return MemoryInstance(self.config, np.random.default_rng(self.seed))
