"""Exception hierarchy for the Digest reproduction.

All library-specific failures derive from :class:`DigestError` so callers can
catch a single base type. Subclasses separate user mistakes (bad query text,
bad precision parameters) from runtime conditions (disconnected overlays,
failed convergence) that the caller may want to handle differently.
"""

from __future__ import annotations


class DigestError(Exception):
    """Base class for all errors raised by this library."""


class ExpressionError(DigestError):
    """Raised when an aggregate expression cannot be parsed or evaluated."""


class QueryError(DigestError):
    """Raised for malformed queries or invalid precision parameters."""


class TopologyError(DigestError):
    """Raised when an overlay graph violates a structural requirement.

    Sampling correctness needs a connected overlay (Theorem 1 requires an
    irreducible chain); operations that would observably break that raise
    this error instead of silently producing a biased sampler.
    """


class StoreError(DigestError):
    """Raised on invalid local-store operations (e.g. duplicate tuple id)."""


class SamplingError(DigestError):
    """Raised when the sampling operator cannot produce a valid sample."""


class SimulationError(DigestError):
    """Raised on invalid simulation-engine usage (e.g. scheduling in the past)."""
