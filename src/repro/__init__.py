"""Digest: fixed-precision approximate continuous aggregate queries in
peer-to-peer databases.

A faithful reproduction of Banaei-Kashani & Shahabi (ICDE 2008). The
package is layered exactly like the paper's system:

* **bottom tier** — :mod:`repro.network` (unstructured overlay),
  :mod:`repro.db` (horizontally partitioned relation) and
  :mod:`repro.sampling` (the Metropolis MCMC sampling operator);
* **top tier** — :mod:`repro.core` (snapshot evaluators, extrapolation
  scheduler, and the :class:`~repro.core.engine.DigestEngine` composing
  them);
* **periphery** — :mod:`repro.baselines` (push-based comparators),
  :mod:`repro.datasets` (calibrated synthetic workloads),
  :mod:`repro.sim` (discrete-event engine) and :mod:`repro.experiments`
  (one runner per paper table/figure).

Quickstart::

    import numpy as np
    from repro import (
        ContinuousQuery, DigestEngine, EngineConfig, OverlayGraph,
        P2PDatabase, Precision, Schema, parse_query, power_law_topology,
    )

    rng = np.random.default_rng(0)
    graph = OverlayGraph(power_law_topology(200, rng=rng), n_nodes=200)
    db = P2PDatabase(Schema(("temperature",)), graph.nodes())
    for node in graph.nodes():
        db.insert(node, {"temperature": float(rng.normal(70, 8))})

    cq = ContinuousQuery(
        parse_query("SELECT AVG(temperature) FROM R"),
        Precision(delta=2.0, epsilon=2.0, confidence=0.95),
        duration=100,
    )
    engine = DigestEngine(graph, db, cq, origin=0, rng=rng)
    for t in range(100):
        ...  # apply your updates
        engine.step(t)
    print(engine.result.last().estimate)
"""

from repro.baselines import FilterConfig, OlstonFilterBaseline, PushAllBaseline
from repro.core import (
    ContinuousQuery,
    DigestEngine,
    DigestNode,
    DigestSession,
    EngineConfig,
    IndependentEvaluator,
    Precision,
    Query,
    QuerySet,
    RepeatedEvaluator,
    RunningResult,
    TaylorExtrapolator,
    parse_query,
)
from repro.db import (
    AggregateOp,
    Expression,
    LocalStore,
    P2PDatabase,
    Predicate,
    Schema,
    exact_aggregate,
)
from repro.errors import (
    DigestError,
    ExpressionError,
    QueryError,
    SamplingError,
    SimulationError,
    StoreError,
    TopologyError,
)
from repro.network import (
    ChurnConfig,
    ChurnProcess,
    MessageLedger,
    OverlayGraph,
    mesh_topology,
    power_law_topology,
    random_topology,
    small_world_topology,
)
from repro.sampling import SamplePool, SamplerConfig, SamplingOperator

__version__ = "1.0.0"

__all__ = [
    "AggregateOp",
    "ChurnConfig",
    "ChurnProcess",
    "ContinuousQuery",
    "DigestEngine",
    "DigestError",
    "DigestNode",
    "DigestSession",
    "EngineConfig",
    "Expression",
    "ExpressionError",
    "FilterConfig",
    "IndependentEvaluator",
    "LocalStore",
    "MessageLedger",
    "OlstonFilterBaseline",
    "OverlayGraph",
    "P2PDatabase",
    "Precision",
    "Predicate",
    "PushAllBaseline",
    "Query",
    "QueryError",
    "QuerySet",
    "RepeatedEvaluator",
    "RunningResult",
    "SamplePool",
    "SamplerConfig",
    "SamplingError",
    "SamplingOperator",
    "Schema",
    "SimulationError",
    "StoreError",
    "TaylorExtrapolator",
    "TopologyError",
    "exact_aggregate",
    "mesh_topology",
    "parse_query",
    "power_law_topology",
    "random_topology",
    "small_world_topology",
    "__version__",
]
