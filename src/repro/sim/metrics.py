"""Metric collection for experiments.

:class:`MetricSeries` records ``(time, value)`` pairs for one named metric;
:class:`RunMetrics` groups the series of one experiment run together with
scalar counters (total samples, fresh samples, snapshot-query count, ...)
so every benchmark reports through the same structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class MetricSeries:
    """Append-only time series of float observations."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._times: list[int] = []
        self._values: list[float] = []

    def record(self, time: int, value: float) -> None:
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"series {self.name!r} requires non-decreasing times; "
                f"got {time} after {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(float(value))

    def __len__(self) -> int:
        return len(self._times)

    @property
    def times(self) -> np.ndarray:
        return np.array(self._times, dtype=np.int64)

    @property
    def values(self) -> np.ndarray:
        return np.array(self._values, dtype=float)

    def last(self) -> float:
        if not self._values:
            raise ValueError(f"series {self.name!r} is empty")
        return self._values[-1]

    def mean(self) -> float:
        if not self._values:
            raise ValueError(f"series {self.name!r} is empty")
        return float(np.mean(self._values))

    def total(self) -> float:
        # raises on empty like mean()/last(): an empty series is a
        # measurement that never happened, not a measurement of zero
        if not self._values:
            raise ValueError(f"series {self.name!r} is empty")
        return float(np.sum(self._values))

    def extend(self, other: "MetricSeries") -> None:
        """Append another series' observations (times must not go back)."""
        for time, value in zip(other._times, other._values):
            self.record(time, value)


@dataclass
class RunMetrics:
    """All measurements from one experiment run.

    Counters
    --------
    snapshot_queries:
        Number of snapshot-query executions (Figure 4-a's y-axis).
    samples_total:
        All samples evaluated, retained + fresh (Figure 4-b / 5-a y-axes).
    samples_fresh:
        Samples that had to be located via the sampling operator (the ones
        that actually cost messages, Section VI-B2).
    samples_retained:
        Re-evaluated retained samples (negligible communication cost).
    walks_retried:
        Walk attempts beyond the first (failure-model supervision).
    walks_failed:
        Walks that exhausted their retry budget and delivered no sample.
    faults_injected:
        Fault events recorded during the run (losses, crashes, ...).
    degraded_estimates:
        Snapshot estimates returned with ``degraded=True``.
    pool_hits:
        Samples served to a query from the shared sample pool (walks the
        multi-query session did not have to pay for again).
    pool_misses:
        Pool requests that fell through to fresh walks (the marginal
        ``n_required - n_pooled`` draws).
    alerts_fired:
        Alert-rule transitions into the firing state (live guarantee
        auditing; see :mod:`repro.obs.alerts`).
    alerts_resolved:
        Firing alert rules that transitioned back to resolved.
    """

    snapshot_queries: int = 0
    samples_total: int = 0
    samples_fresh: int = 0
    samples_retained: int = 0
    walks_retried: int = 0
    walks_failed: int = 0
    faults_injected: int = 0
    degraded_estimates: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    alerts_fired: int = 0
    alerts_resolved: int = 0
    _series: dict[str, MetricSeries] = field(default_factory=dict)

    def series(self, name: str) -> MetricSeries:
        """Get (or lazily create) the named series."""
        found = self._series.get(name)
        if found is None:
            found = MetricSeries(name)
            self._series[name] = found
        return found

    def has_series(self, name: str) -> bool:
        return name in self._series and len(self._series[name]) > 0

    def series_names(self) -> list[str]:
        return sorted(self._series)

    def merge_counters(self, other: "RunMetrics") -> None:
        """Fold another run's counters *and series* into this one.

        Series are adopted wholesale: a series present only on one side
        (or empty on this side) is copied over. When both sides hold
        observations under the same name there is no meaningful merge
        order (trial runs restart their clocks), so silently dropping or
        interleaving would corrupt the data — it raises instead.
        """
        self.snapshot_queries += other.snapshot_queries
        self.samples_total += other.samples_total
        self.samples_fresh += other.samples_fresh
        self.samples_retained += other.samples_retained
        self.walks_retried += other.walks_retried
        self.walks_failed += other.walks_failed
        self.faults_injected += other.faults_injected
        self.degraded_estimates += other.degraded_estimates
        self.pool_hits += other.pool_hits
        self.pool_misses += other.pool_misses
        self.alerts_fired += other.alerts_fired
        self.alerts_resolved += other.alerts_resolved
        for name, series in other._series.items():
            if len(series) == 0:
                continue
            mine = self._series.get(name)
            if mine is not None and len(mine) > 0:
                raise ValueError(
                    f"cannot merge series {name!r}: both runs recorded it "
                    f"({len(mine)} and {len(series)} observations)"
                )
            adopted = self.series(name)
            adopted.extend(series)
