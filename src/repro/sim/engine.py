"""Heap-based discrete-event simulation engine.

Events are ``(time, priority, sequence)``-ordered callables. Ties at the
same time break by ``priority`` (lower runs first), then by scheduling
order, which gives the deterministic intra-step ordering the experiments
rely on: data updates (priority 0) happen before churn (priority 10), which
happens before snapshot queries (priority 20) — the paper's "network is
static during a sampling occasion" assumption falls out of this ordering.

Recurring processes (update streams, churn rounds, the ALL scheduler) are
expressed with :meth:`SimulationEngine.schedule_every`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import SimulationError
from repro.sim.clock import SimulationClock

Action = Callable[[int], None]

PRIORITY_UPDATES = 0
PRIORITY_CHURN = 10
PRIORITY_QUERY = 20


@dataclass(order=True)
class Event:
    """A scheduled callable. Ordering key: (time, priority, sequence)."""

    time: int
    priority: int
    sequence: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class RecurringHandle:
    """Cancellation token for a :meth:`SimulationEngine.schedule_every` chain."""

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SimulationEngine:
    """Deterministic single-threaded event loop over integer time."""

    def __init__(self, clock: SimulationClock | None = None) -> None:
        self._clock = clock if clock is not None else SimulationClock()
        # heap entries are (time, priority, sequence, event) tuples rather
        # than bare Events: tuple comparison stays in C, so a deep heap
        # (e.g. many far-future retry timeouts) never pays per-sift Python
        # __lt__ calls
        self._heap: list[tuple[int, int, int, Event]] = []
        self._sequence = itertools.count()
        self._events_run = 0

    @property
    def clock(self) -> SimulationClock:
        return self._clock

    @property
    def now(self) -> int:
        return self._clock.now

    @property
    def events_run(self) -> int:
        """Total events executed so far (diagnostics)."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Live events still queued (cancelled-but-unpopped ones excluded)."""
        return sum(1 for *_, event in self._heap if not event.cancelled)

    def schedule_at(self, time: int, action: Action, priority: int = 0) -> Event:
        """Schedule ``action(time)`` to run at absolute time ``time``."""
        if time < self._clock.now:
            raise SimulationError(
                f"cannot schedule at {time}, clock is already at {self._clock.now}"
            )
        event = Event(time, priority, next(self._sequence), action)
        heapq.heappush(self._heap, (time, priority, event.sequence, event))
        return event

    def schedule_in(self, delay: int, action: Action, priority: int = 0) -> Event:
        """Schedule ``action`` after ``delay`` steps."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._clock.now + delay, action, priority)

    def schedule_every(
        self,
        period: int,
        action: Action,
        priority: int = 0,
        start: int | None = None,
        until: int | None = None,
    ) -> "RecurringHandle":
        """Schedule ``action`` every ``period`` steps, starting at ``start``.

        Returns a handle whose :meth:`~RecurringHandle.cancel` stops all
        future firings of the chain.
        """
        if period < 1:
            raise SimulationError(f"period must be >= 1, got {period}")
        first_time = self._clock.now if start is None else start
        handle = RecurringHandle()

        def fire(time: int) -> None:
            if handle.cancelled:
                return
            action(time)
            next_time = time + period
            if (until is None or next_time <= until) and not handle.cancelled:
                self.schedule_at(next_time, fire, priority)

        self.schedule_at(first_time, fire, priority)
        return handle

    def run_until(self, time: int) -> None:
        """Execute all events with timestamps <= ``time``, then set the clock.

        Actions may schedule further events, including at the current time.
        """
        if time < self._clock.now:
            raise SimulationError(
                f"cannot run to {time}, clock is already at {self._clock.now}"
            )
        while self._heap and self._heap[0][0] <= time:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self._clock.advance_to(event.time)
            event.action(event.time)
            self._events_run += 1
        self._clock.advance_to(time)

    def run_all(self, max_events: int = 10_000_000) -> None:
        """Drain the queue completely (bounded by ``max_events``)."""
        executed = 0
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event.cancelled:
                continue
            self._clock.advance_to(event.time)
            event.action(event.time)
            self._events_run += 1
            executed += 1
            if executed >= max_events:
                raise SimulationError(
                    f"run_all exceeded {max_events} events at t={self._clock.now} "
                    f"with {self.pending} still pending; runaway schedule?"
                )
