"""Discrete-event simulation substrate.

The paper assumes a discrete-time model (Section II): time is an integer
step counter whose wall-clock meaning is fixed by the workload (12 hours
per step for TEMPERATURE, 1 second for MEMORY). This package provides a
heap-based event engine (:mod:`repro.sim.engine`) for scheduling update
streams, churn rounds and snapshot queries, plus metric collection helpers
(:mod:`repro.sim.metrics`).
"""

from repro.sim.clock import SimulationClock
from repro.sim.engine import Event, SimulationEngine
from repro.sim.metrics import MetricSeries, RunMetrics

__all__ = [
    "Event",
    "MetricSeries",
    "RunMetrics",
    "SimulationClock",
    "SimulationEngine",
]
