"""Discrete simulation time.

A thin, explicit clock object shared by the engine and its clients so "what
time is it" has exactly one source of truth. Time is a non-negative integer
step count; the mapping to wall-clock time is workload-defined.
"""

from __future__ import annotations

from repro.errors import SimulationError


class SimulationClock:
    """Monotone integer clock."""

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise SimulationError(f"time must be non-negative, got {start}")
        self._now = start

    @property
    def now(self) -> int:
        return self._now

    def advance_to(self, time: int) -> None:
        """Move the clock forward to ``time`` (never backwards)."""
        if time < self._now:
            raise SimulationError(
                f"cannot move clock backwards from {self._now} to {time}"
            )
        self._now = time

    def tick(self, steps: int = 1) -> int:
        """Advance by ``steps`` and return the new time."""
        if steps < 0:
            raise SimulationError(f"cannot tick by negative steps ({steps})")
        self._now += steps
        return self._now

    def __repr__(self) -> str:
        return f"SimulationClock(now={self._now})"
