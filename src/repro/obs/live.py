"""Live trace analytics: bounded-memory windowed aggregates, no replay.

Everything in :mod:`repro.obs.analysis` is post-hoc — it reads a finished
trace, so a run that silently burns its guarantee is only diagnosable
after the fact. :class:`LivePipeline` closes that gap: it is a
:class:`~repro.obs.tracer.TraceSink`, so a :class:`SinkTracer` fans the
span stream into it *as the run executes* (no JSONL round-trip), and it
maintains tumbling windows over simulated time:

* walk latency (count / sum / max) and walk failures;
* per-category message rates (mirroring
  :func:`repro.obs.analysis.message_attribution` bucketing);
* pool hit ratio, snapshot-query and degraded-estimate counts;
* circuit-breaker churn plus the open-breaker fraction (globally and per
  origin) sampled at each window boundary;
* hop-segment transit latency (p95) and the orphan-span rate — transits
  delivered after their attempt was superseded (trace format v2; these
  signals stay zero unless a recording sink has hop segments produced,
  since the non-recording fast path never creates them).

Memory is bounded by construction: one open accumulator plus a
``deque(maxlen=history)`` of closed windows — a week-long run costs the
same memory as a minute-long one.

Determinism and replay
----------------------
The live stream delivers a span when it *ends* and a loose event when it
is emitted, so every delivery carries a non-decreasing timestamp; each
record is assigned to the window containing its delivery time (a span's
attached events are accounted at the span's end — that is when the sink
first sees them). Window accumulators are commutative within a tick, so
feeding the same records in any same-tick order yields identical
windows. :func:`feed_trace` exploits this: replaying an exported trace
through a fresh pipeline reproduces the live windows — and therefore the
exact alert transitions (:mod:`repro.obs.alerts`) — byte for byte.
Alert events are pipeline *output*, never input: they are ignored here
so a replayed trace cannot feed its own alerts back into the analytics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import QueryError
from repro.obs.schema import (
    EVENT_ADVERTISEMENT,
    EVENT_ALERT_FIRING,
    EVENT_ALERT_RESOLVED,
    EVENT_BREAKER_CLOSE,
    EVENT_BREAKER_TRIP,
    EVENT_FAULT,
    EVENT_MESSAGE,
    EVENT_PROBE,
    SPAN_HOP_SEGMENT,
    SPAN_POOL_SERVE,
    SPAN_SNAPSHOT_QUERY,
    SPAN_WALK,
)
from repro.obs.tracer import Span, Trace, TraceEvent

#: meta key a run writes so a replay closes its final (partial) window at
#: the same simulated time the live pipeline did
META_FINISHED_AT = "finished_at"


def _as_int(value: object, default: int = 0) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return int(value)
    return default


def _percentile(counts: dict[int, int], q: float) -> float:
    """The q-quantile of a value -> count map (0.0 when empty).

    Latencies are small simulated-tick integers, so a count map is both
    exact and bounded — no reservoir needed for a p95 over a window.
    """
    total = sum(counts.values())
    if not total:
        return 0.0
    rank = max(1, int(q * total) + (0 if q * total == int(q * total) else 1))
    seen = 0
    for value in sorted(counts):
        seen += counts[value]
        if seen >= rank:
            return float(value)
    return float(max(counts))


@dataclass(frozen=True)
class WindowConfig:
    """Windowing parameters of one pipeline.

    ``width`` is the tumbling-window width in simulated ticks; ``slide``
    is how many of the most recent closed windows the sliding view
    aggregates (burn-rate rules evaluate against it); ``history`` bounds
    how many closed windows are retained.
    """

    width: int = 50
    slide: int = 4
    history: int = 64

    def __post_init__(self) -> None:
        if self.width < 1:
            raise QueryError(f"window width must be >= 1, got {self.width}")
        if self.slide < 1:
            raise QueryError(f"slide must be >= 1, got {self.slide}")
        if self.history < self.slide:
            raise QueryError(
                f"history must be >= slide, got {self.history} < {self.slide}"
            )


@dataclass
class WindowStats:
    """Accumulated counts of one tumbling window (or a merged view).

    All count fields are commutative accumulators; the ``breaker_*``
    fraction fields are *state snapshots* taken at window close (merging
    keeps the most recent window's snapshot). ``extra`` holds contributor
    signals (e.g. the guarantee auditor's burn rate).
    """

    start: int
    end: int
    partial: bool = False
    walks: int = 0
    walks_failed: int = 0
    walk_latency_sum: int = 0
    walk_latency_max: int = 0
    messages: dict[str, int] = field(default_factory=dict)
    pool_hits: int = 0
    pool_misses: int = 0
    snapshots: int = 0
    degraded: int = 0
    faults: int = 0
    hops: int = 0
    hop_orphans: int = 0
    #: transit latency -> count (exact; latencies are small tick values)
    hop_latencies: dict[int, int] = field(default_factory=dict)
    breaker_trips: int = 0
    breaker_closes: int = 0
    breaker_open_fraction: float = 0.0
    breaker_open_by_origin: dict[object, float] = field(default_factory=dict)
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def width(self) -> int:
        return max(1, self.end - self.start)

    @property
    def message_total(self) -> int:
        return sum(self.messages.values())

    def signals(self) -> dict[str, float]:
        """Named scalar signals alert rules reference.

        Ratios are 0.0 when their denominator is empty — an empty window
        is a quiet one, not a broken one (absence rules exist to alarm
        on quiet).
        """
        values: dict[str, float] = {
            "walk_count": float(self.walks),
            "walk_latency_mean": (
                self.walk_latency_sum / self.walks if self.walks else 0.0
            ),
            "walk_latency_max": float(self.walk_latency_max),
            "walk_failure_fraction": (
                self.walks_failed / self.walks if self.walks else 0.0
            ),
            "message_rate": self.message_total / self.width,
            "pool_hit_ratio": (
                self.pool_hits / (self.pool_hits + self.pool_misses)
                if (self.pool_hits + self.pool_misses)
                else 0.0
            ),
            "snapshot_count": float(self.snapshots),
            "degraded_fraction": (
                self.degraded / self.snapshots if self.snapshots else 0.0
            ),
            "fault_count": float(self.faults),
            "hop_count": float(self.hops),
            "hop_latency_p95": _percentile(self.hop_latencies, 0.95),
            "orphan_span_rate": (
                self.hop_orphans / self.hops if self.hops else 0.0
            ),
            "breaker_trip_count": float(self.breaker_trips),
            "breaker_open_fraction": self.breaker_open_fraction,
        }
        values.update(self.extra)
        return values

    def merge(self, other: "WindowStats") -> None:
        """Fold a *later* window into this one (sliding-view building)."""
        self.end = max(self.end, other.end)
        self.start = min(self.start, other.start)
        self.partial = self.partial or other.partial
        self.walks += other.walks
        self.walks_failed += other.walks_failed
        self.walk_latency_sum += other.walk_latency_sum
        self.walk_latency_max = max(self.walk_latency_max, other.walk_latency_max)
        for category, count in other.messages.items():
            self.messages[category] = self.messages.get(category, 0) + count
        self.pool_hits += other.pool_hits
        self.pool_misses += other.pool_misses
        self.snapshots += other.snapshots
        self.degraded += other.degraded
        self.faults += other.faults
        self.hops += other.hops
        self.hop_orphans += other.hop_orphans
        for latency, count in other.hop_latencies.items():
            self.hop_latencies[latency] = (
                self.hop_latencies.get(latency, 0) + count
            )
        self.breaker_trips += other.breaker_trips
        self.breaker_closes += other.breaker_closes
        # state snapshots: the later window's view wins
        self.breaker_open_fraction = other.breaker_open_fraction
        self.breaker_open_by_origin = dict(other.breaker_open_by_origin)
        self.extra = dict(other.extra)


class LivePipeline:
    """Incremental stream processor over the tracer's span/event stream.

    Attach with ``tracer.add_sink(pipeline)``; windows close as delivery
    times cross tumbling boundaries. ``add_listener`` callbacks observe
    every closed window (the alert engine subscribes this way);
    ``add_contributor`` callables inject extra named signals into each
    window at close time (the guarantee auditor does).
    """

    #: message accounting needs only per-category counts at span end;
    #: when span events are absent (a non-recording tracer skipped
    #: constructing them) the counts arrive as the walk span's
    #: ``messages_by_category`` attribute instead
    needs_span_events = False

    def __init__(self, config: WindowConfig | None = None) -> None:
        self.config = config if config is not None else WindowConfig()
        self.windows: deque[WindowStats] = deque(maxlen=self.config.history)
        self._current: WindowStats | None = None
        self._listeners: list[Callable[[WindowStats], None]] = []
        self._contributors: list[Callable[[], dict[str, float]]] = []
        #: links with an open breaker right now / ever seen in an event
        self._open_links: set[tuple[object, object]] = set()
        self._known_links: set[tuple[object, object]] = set()
        self.records_seen = 0
        self.records_dropped = 0
        self.finished = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def add_listener(self, listener: Callable[[WindowStats], None]) -> None:
        """Call ``listener(window)`` on every window close, in order."""
        self._listeners.append(listener)

    def add_contributor(
        self, contributor: Callable[[], dict[str, float]]
    ) -> None:
        """Merge ``contributor()`` into each closing window's signals."""
        self._contributors.append(contributor)

    # ------------------------------------------------------------------
    # windowing
    # ------------------------------------------------------------------

    def _window_for(self, time: int) -> WindowStats:
        width = self.config.width
        index = time // width
        start = index * width
        current = self._current
        if current is None:
            current = WindowStats(start=start, end=start + width)
            self._current = current
            return current
        if start > current.start:
            while current.start < start:
                self._close(current)
                current = WindowStats(
                    start=current.start + width, end=current.start + 2 * width
                )
            self._current = current
        return self._current

    def _close(self, window: WindowStats) -> None:
        window.breaker_open_fraction = self._open_fraction()
        window.breaker_open_by_origin = self._open_by_origin()
        for contributor in self._contributors:
            window.extra.update(contributor())
        self.windows.append(window)
        for listener in self._listeners:
            listener(window)

    def _open_fraction(self) -> float:
        if not self._known_links:
            return 0.0
        return len(self._open_links) / len(self._known_links)

    def _open_by_origin(self) -> dict[object, float]:
        known: dict[object, int] = {}
        opened: dict[object, int] = {}
        for origin, _neighbor in self._known_links:
            known[origin] = known.get(origin, 0) + 1
        for origin, _neighbor in self._open_links:
            opened[origin] = opened.get(origin, 0) + 1
        return {
            origin: opened.get(origin, 0) / total
            for origin, total in sorted(known.items(), key=lambda kv: str(kv[0]))
        }

    def finish(self, time: int) -> None:
        """Close the open (possibly partial) window at end of run.

        ``time`` is the run's final simulated tick; a replay must pass
        the same value (see :data:`META_FINISHED_AT`) to reproduce the
        final window — and any transitions it fires — exactly.
        """
        if self.finished:
            return
        self.finished = True
        current = self._current
        self._current = None
        if current is None:
            return
        if time < current.end:
            current.end = max(time, current.start)
            current.partial = True
        self._close(current)

    def sliding(self, windows: int | None = None) -> WindowStats | None:
        """Aggregate of the last ``windows`` closed windows (None = slide)."""
        k = windows if windows is not None else self.config.slide
        recent = list(self.windows)[-k:]
        if not recent:
            return None
        merged = WindowStats(start=recent[0].start, end=recent[0].start)
        for window in recent:
            merged.merge(window)
        return merged

    # ------------------------------------------------------------------
    # TraceSink interface
    # ------------------------------------------------------------------

    def on_span_end(self, span: Span) -> None:
        if span.end is None or span.end < 0:
            self.records_dropped += 1
            return
        self.records_seen += 1
        window = self._window_for(span.end)
        if span.name == SPAN_WALK:
            window.walks += 1
            window.walk_latency_sum += span.duration
            window.walk_latency_max = max(window.walk_latency_max, span.duration)
            if span.attrs.get("outcome") == "failed":
                window.walks_failed += 1
            if span.events:
                for event in span.events:
                    if event.name == EVENT_MESSAGE:
                        category = str(event.attrs.get("category", "?"))
                        window.messages[category] = (
                            window.messages.get(category, 0) + 1
                        )
                    elif event.name == EVENT_PROBE:
                        window.messages["probe"] = window.messages.get(
                            "probe", 0
                        ) + _as_int(event.attrs.get("messages"), default=2)
            else:
                # non-recording fast path: the producer skipped event
                # construction and attached aggregate counts instead
                counts = span.attrs.get("messages_by_category")
                if isinstance(counts, dict):
                    for category, count in counts.items():
                        window.messages[str(category)] = (
                            window.messages.get(str(category), 0)
                            + _as_int(count)
                        )
        elif span.name == SPAN_HOP_SEGMENT:
            window.hops += 1
            latency = span.duration
            window.hop_latencies[latency] = (
                window.hop_latencies.get(latency, 0) + 1
            )
            if bool(span.attrs.get("orphaned", False)):
                window.hop_orphans += 1
        elif span.name == SPAN_SNAPSHOT_QUERY:
            window.snapshots += 1
            if bool(span.attrs.get("degraded", False)):
                window.degraded += 1
        elif span.name == SPAN_POOL_SERVE:
            window.pool_hits += _as_int(span.attrs.get("n_hit"))
            window.pool_misses += _as_int(span.attrs.get("n_miss"))

    def on_event(self, event: TraceEvent) -> None:
        if event.name in (EVENT_ALERT_FIRING, EVENT_ALERT_RESOLVED):
            return  # pipeline output, never input (replay symmetry)
        if event.time < 0:
            self.records_dropped += 1
            return
        self.records_seen += 1
        window = self._window_for(event.time)
        if event.name == EVENT_FAULT:
            window.faults += 1
        elif event.name == EVENT_ADVERTISEMENT:
            window.messages["advertisement"] = (
                window.messages.get("advertisement", 0) + 1
            )
        elif event.name == EVENT_BREAKER_TRIP:
            link = (event.attrs.get("origin"), event.attrs.get("neighbor"))
            self._known_links.add(link)
            self._open_links.add(link)
            window.breaker_trips += 1
        elif event.name == EVENT_BREAKER_CLOSE:
            link = (event.attrs.get("origin"), event.attrs.get("neighbor"))
            self._known_links.add(link)
            self._open_links.discard(link)
            window.breaker_closes += 1


def feed_trace(
    pipeline: LivePipeline,
    trace: Trace,
    finish_time: int | None = None,
    span_observer: Callable[[Span], None] | None = None,
) -> LivePipeline:
    """Replay a finished trace through a pipeline in delivery order.

    Spans are delivered in (end, span_id) order and loose events in
    (time, emission) order — the same delivery times the live stream
    produced; same-tick interleaving between the two streams is
    unobservable because window accumulators are commutative within a
    tick. ``finish_time`` defaults to the trace's recorded
    :data:`META_FINISHED_AT` (falling back to the latest delivery time),
    so the final partial window closes exactly as it did live.

    ``span_observer`` sees each span just before the pipeline does —
    the hook stateful contributors (the replayed guarantee auditor) use
    to track the run, mirroring the live session observing an estimate
    before it ends the span.
    """
    deliveries: list[tuple[int, int, int, object]] = []
    for span in trace.spans:
        if span.end is not None and span.end >= 0:
            deliveries.append((span.end, 0, span.span_id, span))
    for index, event in enumerate(trace.events):
        if event.time >= 0:
            deliveries.append((event.time, 1, index, event))
    deliveries.sort(key=lambda item: (item[0], item[1], item[2]))
    for _time, kind, _seq, record in deliveries:
        if kind == 0:
            if span_observer is not None:
                span_observer(record)  # type: ignore[arg-type]
            pipeline.on_span_end(record)  # type: ignore[arg-type]
        else:
            pipeline.on_event(record)  # type: ignore[arg-type]
    if finish_time is None:
        recorded = trace.meta.get(META_FINISHED_AT)
        if isinstance(recorded, (int, float)) and not isinstance(recorded, bool):
            finish_time = int(recorded)
        elif deliveries:
            finish_time = deliveries[-1][0]
        else:
            finish_time = 0
    pipeline.finish(finish_time)
    return pipeline
