"""The declared trace schema: every span and event name of the trace format.

Span and event names used to be free-form string literals spread across
~30 producing call sites (``tracer.span("walk", ...)``) and ~24 consuming
comparisons (``span.name == "walk"``). Renaming a span then silently
corrupted every trace-derived result: the producer and the consumer
drifted apart, ``message_attribution`` returned zeros, and nothing
failed. This module is the single declaration point that closes that
class of bug:

* every name is a module-level constant (``SPAN_WALK``, ``EVENT_HOP``,
  ...) that producers and consumers both import;
* every span/event has a :class:`SpanSchema` / :class:`EventSchema`
  entry declaring its attribute keys, registered in :data:`SPAN_SCHEMAS`
  / :data:`EVENT_SCHEMAS`;
* ``tools/digest_analyzer`` statically checks both directions: DGL009
  verifies every ``tracer.span(...)`` / ``.event(...)`` call site in
  ``src/repro`` against this registry (undeclared names and undeclared
  attribute keys are findings), and DGL010 bans hard-coded trace-name
  literals in the consumers (``repro.obs.analysis``,
  ``tools/trace_analysis``, ``benchmarks/collect_results.py``).

The *values* of the constants are part of the on-disk trace format and
must never change — exported JSONL traces (CI artifacts, RESULTS.md
inputs) use these exact strings. ``tests/obs/test_schema.py`` pins each
value. Trace format v2 (causal tracing) *added* ``SPAN_HOP_SEGMENT`` and
``EVENT_CTX_FORWARD`` plus optional ``ctx_*`` keys on existing events;
every v1 name kept its value, which is why the v1 import shim in
``repro.obs.export`` needs no translation.

Adding a new span or event name (see docs/OBSERVABILITY.md):

1. add the ``SPAN_*`` / ``EVENT_*`` constant here;
2. register a :class:`SpanSchema` / :class:`EventSchema` entry declaring
   its attribute keys (``required`` must appear over the span's
   lifecycle; ``optional`` may);
3. use the constant at the producing call site and in any consumer —
   the analyzer rejects literals and undeclared names/keys.

This module deliberately imports nothing from the rest of the package
(and only stdlib ``dataclasses``): both ``repro.obs.tracer`` and the
out-of-tree analyzer (which parses this file statically, without
importing it) depend on it staying a leaf.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SpanSchema:
    """Declared shape of one span name.

    ``required`` keys must all be set over the span's lifecycle (at
    ``tracer.span(...)``, ``span.set(...)`` or ``tracer.end(...)``);
    ``optional`` keys may be. Any other key is a schema violation
    (DGL009).
    """

    name: str
    required: tuple[str, ...]
    optional: tuple[str, ...] = ()
    description: str = ""

    @property
    def attrs(self) -> tuple[str, ...]:
        """All declared attribute keys (required then optional)."""
        return self.required + self.optional


@dataclass(frozen=True)
class EventSchema:
    """Declared shape of one event name.

    ``span`` names the span the event attaches to (``None`` = recorded
    span-less / "loose"). Events are atomic: all ``required`` keys must
    appear at the single recording call.
    """

    name: str
    required: tuple[str, ...]
    optional: tuple[str, ...] = ()
    span: str | None = None
    description: str = ""

    @property
    def attrs(self) -> tuple[str, ...]:
        """All declared attribute keys (required then optional)."""
        return self.required + self.optional


# ----------------------------------------------------------------------
# span names (values are frozen, see module docstring)
# ----------------------------------------------------------------------

#: One supervised random walk, from launch to completion or failure.
SPAN_WALK = "walk"
#: One coalesced multi-query walk batch (protocol or pool side).
SPAN_SHARED_WALK_BATCH = "shared_walk_batch"
#: One snapshot-query evaluation of a continuous query.
SPAN_SNAPSHOT_QUERY = "snapshot_query"
#: One (message_loss, crash_probability) cell of the fault sweep.
SPAN_FAULT_CELL = "fault_cell"
#: One pool request served to a consuming query (hits + fresh draws).
SPAN_POOL_SERVE = "pool_serve"
#: One (width, duration, heal policy) cell of the partition sweep.
SPAN_PARTITION_CELL = "partition_cell"
#: One operator-level node-sample acquisition (Metropolis walks).
SPAN_SAMPLE_ACQUISITION = "sample_acquisition"
#: One two-stage tuple-sampling round (nodes, then local tuples).
SPAN_TUPLE_SAMPLING = "tuple_sampling"
#: One message transit between two nodes, joined to its walk by the
#: trace context the message carried (trace format v2).
SPAN_HOP_SEGMENT = "hop_segment"

# ----------------------------------------------------------------------
# event names
# ----------------------------------------------------------------------

#: A weight advertisement delivered to a neighbor (loose; control cost).
EVENT_ADVERTISEMENT = "advertisement"
#: One injected fault, mirrored from the FaultLog (loose).
EVENT_FAULT = "fault"
#: A walk attempt superseded by a retry (on the walk span).
EVENT_RETRY = "retry"
#: An origin-side supervision deadline expiring (on the walk span).
EVENT_TIMEOUT = "timeout"
#: One protocol message sent on behalf of a walk (on the walk span).
EVENT_MESSAGE = "message"
#: One walker hop to the next node (on the walk span).
EVENT_HOP = "hop"
#: One cached-weight probe round-trip (on the walk span).
EVENT_PROBE = "probe"
#: A scheduled partition episode cutting the overlay into regions (loose).
EVENT_PARTITION_OPEN = "partition_open"
#: A partition episode healing: all its blocked links restored (loose).
EVENT_PARTITION_HEAL = "partition_heal"
#: A per-neighbor circuit breaker opening after correlated failures (loose).
EVENT_BREAKER_TRIP = "breaker_trip"
#: A half-open breaker admitting one probe walk through (loose).
EVENT_BREAKER_PROBE = "breaker_probe"
#: A reachability change evicting pooled samples wholesale (loose).
EVENT_POOL_INVALIDATE = "pool_invalidate"
#: A previously open circuit breaker re-closing after a successful probe (loose).
EVENT_BREAKER_CLOSE = "breaker_close"
#: An alert rule transitioning into the firing state (loose).
EVENT_ALERT_FIRING = "alert_firing"
#: A firing alert rule transitioning back to resolved (loose).
EVENT_ALERT_RESOLVED = "alert_resolved"
#: A handler forwarding a message with its trace context unchanged
#: (on the walk span; trace format v2).
EVENT_CTX_FORWARD = "ctx_forward"


SPAN_SCHEMAS: dict[str, SpanSchema] = {
    schema.name: schema
    for schema in (
        SpanSchema(
            SPAN_WALK,
            required=("walker_id", "origin", "walk_length", "outcome", "attempts"),
            optional=(
                "consumers",
                "n_consumers",
                "sampled_node",
                "reason",
                # per-category message counts, attached only when a
                # non-recording tracer skipped per-event construction
                "messages_by_category",
            ),
            description="one supervised walk; outcome is completed/failed",
        ),
        SpanSchema(
            SPAN_SHARED_WALK_BATCH,
            required=(
                "n_requested",
                "n_pooled",
                "consumers",
                "n_consumers",
                "origin",
                "n_drawn",
            ),
            description="one coalesced walk batch attributed to its consumers",
        ),
        SpanSchema(
            SPAN_SNAPSHOT_QUERY,
            required=(
                "trigger",
                "aggregate",
                "n_total",
                "n_fresh",
                "n_retained",
                "degraded",
            ),
            optional=(
                "query",
                "reachable_fraction",
                "achieved_epsilon",
                "achieved_confidence",
            ),
            description="one snapshot evaluation; drives RunMetrics counters",
        ),
        SpanSchema(
            SPAN_FAULT_CELL,
            required=(
                "message_loss",
                "crash_probability",
                "seed",
                "n_required",
                "n_achieved",
            ),
            description="one cell of the fault-tolerance sweep",
        ),
        SpanSchema(
            SPAN_PARTITION_CELL,
            required=(
                "width",
                "duration",
                "heal_policy",
                "seed",
                "n_snapshots",
                "n_partitioned",
                "n_dishonest",
            ),
            optional=("recovery_occasions",),
            description="one cell of the partition-tolerance sweep",
        ),
        SpanSchema(
            SPAN_POOL_SERVE,
            required=("n_requested", "consumer", "origin", "n_hit", "n_miss", "n_drawn"),
            description="one pool request served to a query (reuse accounting)",
        ),
        SpanSchema(
            SPAN_SAMPLE_ACQUISITION,
            required=(
                "n_requested",
                "origin",
                "n_continued",
                "n_fresh",
                "mix_length",
                "reset_length",
                "n_delivered",
            ),
            description="one operator node-sample acquisition",
        ),
        SpanSchema(
            SPAN_TUPLE_SAMPLING,
            required=("n_requested", "origin", "n_drawn", "rounds", "partial"),
            description="one two-stage tuple-sampling round",
        ),
        SpanSchema(
            SPAN_HOP_SEGMENT,
            required=(
                "walker_id",
                "category",
                "from_node",
                "to_node",
                "ctx_trace",
                "ctx_span",
                "ctx_attempt",
            ),
            optional=("delivered", "orphaned"),
            description="one message transit (send to delivery), ctx-joined",
        ),
    )
}

EVENT_SCHEMAS: dict[str, EventSchema] = {
    schema.name: schema
    for schema in (
        EventSchema(
            EVENT_ADVERTISEMENT,
            required=("to_node", "source"),
            description="weight advertisement delivered to a neighbor",
        ),
        EventSchema(
            EVENT_FAULT,
            required=("kind", "walker_id", "node", "detail"),
            description="one injected fault mirrored from the FaultLog",
        ),
        EventSchema(
            EVENT_RETRY,
            required=("attempt",),
            optional=("ctx_trace", "ctx_span", "ctx_attempt"),
            span=SPAN_WALK,
            description="a walk attempt superseded by a retry",
        ),
        EventSchema(
            EVENT_TIMEOUT,
            required=("attempt",),
            span=SPAN_WALK,
            description="an origin-side supervision deadline expired",
        ),
        EventSchema(
            EVENT_MESSAGE,
            required=("category", "to_node"),
            span=SPAN_WALK,
            description="one protocol message (mirrors MessageLedger bucketing)",
        ),
        EventSchema(
            EVENT_HOP,
            required=("node", "steps_remaining"),
            optional=("ctx_trace", "ctx_span", "ctx_attempt"),
            span=SPAN_WALK,
            description="one walker hop",
        ),
        EventSchema(
            EVENT_PROBE,
            required=("node", "target", "messages"),
            span=SPAN_WALK,
            description="one cached-weight probe round-trip",
        ),
        EventSchema(
            EVENT_PARTITION_OPEN,
            required=("episode", "n_regions", "n_blocked", "duration"),
            description="a scheduled partition episode cutting the overlay",
        ),
        EventSchema(
            EVENT_PARTITION_HEAL,
            required=("episode", "n_restored", "repaired"),
            optional=("n_bridges",),
            description="a partition episode healing (links restored)",
        ),
        EventSchema(
            EVENT_BREAKER_TRIP,
            required=("origin", "neighbor", "failures"),
            description="a per-neighbor circuit breaker opening",
        ),
        EventSchema(
            EVENT_BREAKER_PROBE,
            required=("origin", "neighbor"),
            description="a half-open breaker admitting one probe walk",
        ),
        EventSchema(
            EVENT_POOL_INVALIDATE,
            required=("n_evicted", "reason"),
            description="a reachability change evicting pooled samples",
        ),
        EventSchema(
            EVENT_BREAKER_CLOSE,
            required=("origin", "neighbor"),
            description="an open circuit breaker re-closing on probe success",
        ),
        EventSchema(
            EVENT_ALERT_FIRING,
            required=("rule", "kind", "signal", "value", "threshold"),
            description="an alert rule entering the firing state",
        ),
        EventSchema(
            EVENT_ALERT_RESOLVED,
            required=("rule", "kind", "signal", "value", "threshold"),
            description="a firing alert rule returning to resolved",
        ),
        EventSchema(
            EVENT_CTX_FORWARD,
            required=("ctx_trace", "ctx_span", "ctx_attempt", "from_node", "to_node"),
            span=SPAN_WALK,
            description="a handler forwarding a message, context unchanged",
        ),
    )
}


def span_names() -> frozenset[str]:
    """All declared span names."""
    return frozenset(SPAN_SCHEMAS)


def event_names() -> frozenset[str]:
    """All declared event names."""
    return frozenset(EVENT_SCHEMAS)


def trace_names() -> frozenset[str]:
    """All declared trace names (spans and events)."""
    return span_names() | event_names()
