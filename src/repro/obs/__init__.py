"""Observability: structured tracing, metrics, profiling and reporting.

The paper's whole evaluation is a cost model — snapshot-query counts,
fresh-vs-retained samples, per-category message traffic — so when a
number looks wrong the reproduction needs a record of *which* walk, hop,
retry or extrapolation decision produced it. This package is that layer:

* :mod:`repro.obs.tracer` — a zero-dependency, simulated-time-aware
  tracer (:class:`Tracer`, :class:`Span`, :class:`TraceEvent`). The
  default :class:`NullTracer` is a no-op, so instrumentation costs
  nothing when disabled; :class:`SinkTracer` builds real spans and
  dispatches them to sinks (:class:`RunMetricsSink` derives the
  :class:`~repro.sim.metrics.RunMetrics` counters — the single source
  of truth replacing hand-booked counters at call sites).
* :mod:`repro.obs.registry` — counters, gauges and histograms with
  *fixed* bucket boundaries so results stay deterministic across runs.
* :mod:`repro.obs.export` — portable JSONL trace export/import.
* :mod:`repro.obs.profile` — wall-clock section timers keyed to
  sim-time span names (the one sanctioned wall-clock reader; simulation
  code itself stays wall-clock-free per digest-lint DGL002).
* :mod:`repro.obs.analysis` — post-hoc trace analysis: message-cost
  attribution, walk-latency histograms, fault/degradation timelines,
  counter reconstruction and the trace-vs-live consistency check.
* :mod:`repro.obs.console` — the single stdout sink (digest-lint DGL007
  bans bare ``print()`` inside ``src/repro``).
* :mod:`repro.obs.live` — bounded-memory *streaming* analytics: a
  :class:`TraceSink` maintaining tumbling/sliding windows over the span
  stream as the run executes (and :func:`~repro.obs.live.feed_trace`
  to replay a finished trace through the same pipeline).
* :mod:`repro.obs.alerts` — declarative threshold / burn-rate / absence
  alert rules with for-duration hysteresis over the live windows; every
  firing→resolved transition is itself a schema-registered trace event,
  so alerting replays deterministically.
* :mod:`repro.obs.audit` — the per-query guarantee auditor: promised
  vs. achieved ``(epsilon, p)`` and the SLO burn rate.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and worked examples.
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    AlertTransition,
    load_rules,
    replay_alerts,
    verify_alert_replay,
)
from repro.obs.audit import AuditVerdict, GuaranteeAuditor, GuaranteePromise
from repro.obs.console import emit
from repro.obs.export import export_trace, import_trace
from repro.obs.live import LivePipeline, WindowConfig, WindowStats, feed_trace
from repro.obs.profile import WallClockProfiler
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    RegistrySink,
    RunMetricsSink,
    SinkTracer,
    Span,
    Trace,
    TraceEvent,
    Tracer,
    TraceSink,
    bridge_fault_log,
)

__all__ = [
    "NULL_TRACER",
    "AlertEngine",
    "AlertRule",
    "AlertTransition",
    "AuditVerdict",
    "Counter",
    "Gauge",
    "GuaranteeAuditor",
    "GuaranteePromise",
    "Histogram",
    "LivePipeline",
    "MetricsRegistry",
    "NullTracer",
    "RecordingTracer",
    "RegistrySink",
    "RunMetricsSink",
    "SinkTracer",
    "Span",
    "Trace",
    "TraceEvent",
    "TraceSink",
    "Tracer",
    "WallClockProfiler",
    "WindowConfig",
    "WindowStats",
    "bridge_fault_log",
    "emit",
    "export_trace",
    "feed_trace",
    "import_trace",
    "load_rules",
    "replay_alerts",
    "verify_alert_replay",
]
