"""Cross-node causal assembly of hop-level traces.

Trace format v2 records one ``hop_segment`` span per message transit,
carrying the :class:`~repro.protocol.messages.TraceContext` the message
itself carried (``ctx_trace`` = the owning walk span's id, ``ctx_attempt``
= the attempt that sent it). This module joins those segments back into
per-walk causal trees *offline*, from the trace alone — no access to the
simulation — which is exactly the position an operator of the future
asyncio backend will be in.

Assembly is deliberately forgiving, because the overlay is unreliable by
design:

* a transit the transport dropped (loss, partition cut, crashed
  receiver) was never closed, so it never reached the export — the chain
  simply has a gap where the overlay swallowed the message;
* a transit delivered after its attempt was superseded or resolved is an
  **orphan**: it really happened (and was billed), but no live chain
  claims it — :class:`WalkTree` keeps orphans separate from the final
  attempt's chain;
* a segment whose walk span is missing entirely (e.g. a truncated
  export) is **unrooted** and collects on the assembly, never raising;
* a v1 trace has no segments at all and assembles to bare walk trees.

:func:`critical_paths` answers the latency question the paper's cost
model keeps implicit: *which hop chain bounded the batch?* The last walk
to finish bounds a coalesced batch's wall-clock, and its chain splits
that bound into transit latency (time on the wire) and supervision
latency (handler time, lazy self-loops, retry backoff) — the two knobs a
deployment can actually turn.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.schema import SPAN_HOP_SEGMENT, SPAN_SHARED_WALK_BATCH, SPAN_WALK
from repro.obs.tracer import Span, Trace


def _as_int(value: object, default: int = 0) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return int(value)
    return default


@dataclass(frozen=True)
class CausalHop:
    """One assembled message transit (send to delivery)."""

    span_id: int
    start: int
    end: int
    from_node: int
    to_node: int
    category: str
    attempt: int
    orphaned: bool

    @property
    def latency(self) -> int:
        """Transit time in ticks (hop latency plus any jitter)."""
        return self.end - self.start

    def as_dict(self) -> dict[str, object]:
        """JSON-portable shape (used by the CLI report)."""
        return {
            "span_id": self.span_id,
            "start": self.start,
            "end": self.end,
            "from_node": self.from_node,
            "to_node": self.to_node,
            "category": self.category,
            "attempt": self.attempt,
            "latency": self.latency,
        }


@dataclass
class WalkTree:
    """The assembled causal tree of one supervised walk."""

    walker_id: int
    #: the owning walk span's id (what every segment's ``ctx_trace`` names)
    trace_id: int
    span: Span
    #: delivered transits of the *final* attempt, in delivery order
    chain: list[CausalHop]
    #: delivered transits no live chain claims (superseded attempts,
    #: post-resolution deliveries)
    orphans: list[CausalHop]

    @property
    def walk_latency(self) -> int:
        """The walk span's full extent (all attempts, launch to end)."""
        return self.span.duration

    @property
    def chain_latency(self) -> int:
        """Ticks the final attempt spent in transit (sum of hop latencies)."""
        return sum(hop.latency for hop in self.chain)

    @property
    def supervision_latency(self) -> int:
        """Everything that was not transit: handlers, laziness, retries."""
        return max(0, self.walk_latency - self.chain_latency)


@dataclass
class CausalAssembly:
    """Every walk tree of a trace, plus the segments nothing claims."""

    walks: list[WalkTree]
    #: delivered segments whose walk span is absent from the trace
    unrooted: list[CausalHop]

    @property
    def n_hops(self) -> int:
        return sum(len(tree.chain) + len(tree.orphans) for tree in self.walks)

    @property
    def n_orphans(self) -> int:
        return sum(len(tree.orphans) for tree in self.walks) + len(self.unrooted)

    @property
    def orphan_rate(self) -> float:
        """Fraction of assembled transits no live chain claims."""
        total = self.n_hops + len(self.unrooted)
        return self.n_orphans / total if total else 0.0

    def summary(self) -> dict[str, object]:
        """JSON-portable assembly statistics."""
        return {
            "n_walks": len(self.walks),
            "n_hops": self.n_hops,
            "n_orphans": self.n_orphans,
            "n_unrooted": len(self.unrooted),
            "orphan_rate": self.orphan_rate,
        }


def _hop_from_segment(span: Span) -> CausalHop:
    attrs = span.attrs
    return CausalHop(
        span_id=span.span_id,
        start=span.start,
        end=span.end if span.end is not None else span.start,
        from_node=_as_int(attrs.get("from_node"), default=-1),
        to_node=_as_int(attrs.get("to_node"), default=-1),
        category=str(attrs.get("category", "")),
        attempt=_as_int(attrs.get("ctx_attempt"), default=1),
        orphaned=bool(attrs.get("orphaned", False)),
    )


def assemble(trace: Trace) -> CausalAssembly:
    """Join hop segments to their walks by the context they carried.

    Never raises on damaged input: dropped messages are gaps, superseded
    deliveries are orphans, segments without a walk span are unrooted,
    and a trace with no segments (v1, or non-recording) yields trees
    with empty chains.
    """
    walk_spans = {
        span.span_id: span for span in trace.spans if span.name == SPAN_WALK
    }
    by_trace: dict[int, list[CausalHop]] = {}
    unrooted: list[CausalHop] = []
    for span in trace.spans:
        if span.name != SPAN_HOP_SEGMENT:
            continue
        hop = _hop_from_segment(span)
        trace_id = _as_int(span.attrs.get("ctx_trace"), default=-1)
        if trace_id in walk_spans:
            by_trace.setdefault(trace_id, []).append(hop)
        else:
            unrooted.append(hop)
    walks: list[WalkTree] = []
    for trace_id in sorted(walk_spans):
        span = walk_spans[trace_id]
        final_attempt = _as_int(span.attrs.get("attempts"), default=1)
        chain: list[CausalHop] = []
        orphans: list[CausalHop] = []
        for hop in by_trace.get(trace_id, ()):
            if hop.attempt == final_attempt and not hop.orphaned:
                chain.append(hop)
            else:
                orphans.append(hop)
        # delivery order: segments close at delivery time; ties (same
        # tick) break by creation order, which is send order
        order = lambda hop: (hop.end, hop.span_id)  # noqa: E731
        chain.sort(key=order)
        orphans.sort(key=order)
        walks.append(
            WalkTree(
                walker_id=_as_int(span.attrs.get("walker_id"), default=-1),
                trace_id=trace_id,
                span=span,
                chain=chain,
                orphans=orphans,
            )
        )
    unrooted.sort(key=lambda hop: (hop.end, hop.span_id))
    return CausalAssembly(walks=walks, unrooted=unrooted)


def hop_latency_attribution(
    assembly: CausalAssembly,
) -> dict[str, dict[str, float]]:
    """Transit latency, attributed per message category.

    Chain transits are attributed under their category (``walk`` /
    ``return`` — the same buckets the ledger pays in); orphaned and
    unrooted transits aggregate under ``orphan`` so wasted wire time is
    visible instead of silently folded into the live buckets.
    """
    buckets: dict[str, list[int]] = {}
    for tree in assembly.walks:
        for hop in tree.chain:
            buckets.setdefault(hop.category, []).append(hop.latency)
        for hop in tree.orphans:
            buckets.setdefault("orphan", []).append(hop.latency)
    for hop in assembly.unrooted:
        buckets.setdefault("orphan", []).append(hop.latency)
    attribution: dict[str, dict[str, float]] = {}
    for category in sorted(buckets):
        latencies = buckets[category]
        attribution[category] = {
            "count": float(len(latencies)),
            "total": float(sum(latencies)),
            "mean": sum(latencies) / len(latencies),
            "max": float(max(latencies)),
        }
    return attribution


@dataclass(frozen=True)
class CriticalPath:
    """The hop chain that bounded one walk batch (or the whole run)."""

    #: ``"run"`` for the whole trace, ``"batch:<span_id>"`` per batch span
    scope: str
    n_walks: int
    #: the bounding walk: the last one to finish within the scope
    walker_id: int
    trace_id: int
    walk_latency: int
    chain_latency: int
    supervision_latency: int
    hops: tuple[CausalHop, ...]

    def as_dict(self) -> dict[str, object]:
        """JSON-portable shape (used by the CLI report and CI artifact)."""
        return {
            "scope": self.scope,
            "n_walks": self.n_walks,
            "walker_id": self.walker_id,
            "trace_id": self.trace_id,
            "walk_latency": self.walk_latency,
            "chain_latency": self.chain_latency,
            "supervision_latency": self.supervision_latency,
            "hops": [hop.as_dict() for hop in self.hops],
        }


def _bounding_path(scope: str, trees: list[WalkTree]) -> CriticalPath | None:
    if not trees:
        return None
    bounding = max(trees, key=lambda tree: (tree.span.end or 0, tree.trace_id))
    return CriticalPath(
        scope=scope,
        n_walks=len(trees),
        walker_id=bounding.walker_id,
        trace_id=bounding.trace_id,
        walk_latency=bounding.walk_latency,
        chain_latency=bounding.chain_latency,
        supervision_latency=bounding.supervision_latency,
        hops=tuple(bounding.chain),
    )


def critical_paths(
    trace: Trace, assembly: CausalAssembly | None = None
) -> list[CriticalPath]:
    """The bounding hop chain of each walk batch, plus the whole run.

    Walks are associated to a ``shared_walk_batch`` span by interval
    containment — batches drive to completion before the next one
    starts, so containment is unambiguous on the traces the runtime
    produces, and wrong associations merely mislabel a batch's
    membership rather than corrupting any walk's own chain.
    """
    if assembly is None:
        assembly = assemble(trace)
    paths: list[CriticalPath] = []
    run = _bounding_path("run", assembly.walks)
    if run is not None:
        paths.append(run)
    trees = assembly.walks
    for batch in trace.spans_named(SPAN_SHARED_WALK_BATCH):
        if batch.end is None:
            continue
        members = [
            tree
            for tree in trees
            if tree.trace_id > batch.span_id
            and tree.span.start >= batch.start
            and tree.span.end is not None
            and tree.span.end <= batch.end
        ]
        path = _bounding_path(f"batch:{batch.span_id}", members)
        if path is not None:
            paths.append(path)
    return paths
