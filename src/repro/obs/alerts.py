"""Declarative alerting over the live pipeline's windowed signals.

An :class:`AlertEngine` subscribes to a
:class:`~repro.obs.live.LivePipeline` and evaluates a fixed list of
:class:`AlertRule` instances at every window close. Three rule kinds:

* ``threshold`` — the window's signal value compared against the
  threshold (``comparison`` picks the direction);
* ``burn_rate`` — the same comparison, but against the *sliding* view
  (the last ``WindowConfig.slide`` windows merged), which is how SLO
  burn is judged: a single noisy window must not page;
* ``absence`` — breaches when the signal is ``<= threshold`` (default
  0.0): the alarm for "the thing stopped happening entirely" that
  threshold rules structurally cannot express over a quiet window.

``for_windows`` adds hysteresis: a rule transitions to *firing* only
after breaching that many consecutive windows, and resolves on the
first clean window (the usual page-late/recover-fast asymmetry).

Every transition is appended to :attr:`AlertEngine.transitions` and
emitted as a schema-registered loose trace event
(:data:`~repro.obs.schema.EVENT_ALERT_FIRING` /
:data:`~repro.obs.schema.EVENT_ALERT_RESOLVED`), stamped at the closing
window's end boundary. Because the pipeline itself ignores alert events
as input, a recorded trace replays to the exact same transitions —
:func:`verify_alert_replay` is the gate that proves it.

Rules files are plain JSON (no new dependencies): a list of objects
whose keys mirror :class:`AlertRule` fields; see
docs/OBSERVABILITY.md §"Live pipeline & alerting".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import QueryError
from repro.obs.analysis import alert_timeline
from repro.obs.audit import auditor_from_trace
from repro.obs.live import LivePipeline, WindowConfig, WindowStats, feed_trace
from repro.obs.schema import EVENT_ALERT_FIRING, EVENT_ALERT_RESOLVED
from repro.obs.tracer import NULL_TRACER, Trace, Tracer

if TYPE_CHECKING:  # pragma: no cover - layering: obs stays network-light
    from repro.network.faults import FaultLog

#: rule kinds
THRESHOLD = "threshold"
BURN_RATE = "burn_rate"
ABSENCE = "absence"

#: firing/resolved states (transition labels and FaultLog kinds)
FIRING = "alerts_fired"
RESOLVED = "alerts_resolved"

_COMPARATORS = {
    ">": lambda value, threshold: value > threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<": lambda value, threshold: value < threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One declarative rule over a named pipeline signal."""

    name: str
    signal: str
    kind: str = THRESHOLD
    threshold: float = 0.0
    comparison: str = ">"
    for_windows: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("alert rule name must be non-empty")
        if self.kind not in (THRESHOLD, BURN_RATE, ABSENCE):
            raise QueryError(
                f"rule {self.name!r}: kind must be one of "
                f"{THRESHOLD!r}/{BURN_RATE!r}/{ABSENCE!r}, got {self.kind!r}"
            )
        if self.comparison not in _COMPARATORS:
            raise QueryError(
                f"rule {self.name!r}: comparison must be one of "
                f"{sorted(_COMPARATORS)}, got {self.comparison!r}"
            )
        if self.for_windows < 1:
            raise QueryError(
                f"rule {self.name!r}: for_windows must be >= 1, "
                f"got {self.for_windows}"
            )

    def breaches(self, value: float) -> bool:
        """Does this signal value breach the rule?"""
        if self.kind == ABSENCE:
            return value <= self.threshold
        return _COMPARATORS[self.comparison](value, self.threshold)


@dataclass(frozen=True)
class AlertTransition:
    """One firing/resolved lifecycle edge of one rule."""

    time: int
    rule: str
    state: str
    signal: str
    kind: str
    value: float
    threshold: float


def load_rules(path: str | Path) -> list[AlertRule]:
    """Parse a JSON rules file into :class:`AlertRule` instances."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, list):
        raise QueryError(f"rules file {path} must hold a JSON list")
    allowed = {f.name for f in fields(AlertRule)}
    rules: list[AlertRule] = []
    for index, entry in enumerate(raw):
        if not isinstance(entry, dict):
            raise QueryError(f"rules file {path}: entry {index} is not an object")
        unknown = sorted(set(entry) - allowed)
        if unknown:
            raise QueryError(
                f"rules file {path}: entry {index} has unknown keys {unknown}"
            )
        rules.append(AlertRule(**entry))
    return rules


class AlertEngine:
    """Evaluates rules at every window close; owns the alert lifecycle.

    ``tracer`` receives the transition events (attach the run's own
    :class:`~repro.obs.tracer.SinkTracer` so transitions enter the trace
    and the :class:`~repro.obs.tracer.RunMetricsSink` counters);
    ``fault_log`` is an *ops* log recording the same transitions under
    the kinds :data:`FIRING` / :data:`RESOLVED`, so
    ``FaultLog.counts()`` surfaces ``alerts_fired`` / ``alerts_resolved``
    next to the injected-fault kinds. It defaults to a dedicated private
    log: recording into a tracer-bridged fault log would double-count
    every transition as an injected fault.
    """

    def __init__(
        self,
        pipeline: LivePipeline,
        rules: list[AlertRule],
        tracer: Tracer | None = None,
        fault_log: "FaultLog | None" = None,
    ) -> None:
        names = [rule.name for rule in rules]
        duplicates = sorted({name for name in names if names.count(name) > 1})
        if duplicates:
            raise QueryError(f"duplicate alert rule names: {duplicates}")
        self.pipeline = pipeline
        self.rules = list(rules)
        self._tracer = tracer if tracer is not None else NULL_TRACER
        if fault_log is None:
            # imported lazily to keep repro.obs importable without network
            from repro.network.faults import FaultLog

            fault_log = FaultLog()
        self.fault_log = fault_log
        self._streaks: dict[str, int] = {rule.name: 0 for rule in rules}
        self._firing: set[str] = set()
        self.transitions: list[AlertTransition] = []
        pipeline.add_listener(self.on_window)

    @property
    def firing(self) -> list[str]:
        """Names of the rules currently in the firing state, sorted."""
        return sorted(self._firing)

    def _value(self, rule: AlertRule, window: WindowStats) -> float:
        if rule.kind == BURN_RATE:
            view = self.pipeline.sliding()
            if view is None:  # pragma: no cover - listener implies a window
                view = window
            return float(view.signals().get(rule.signal, 0.0))
        return float(window.signals().get(rule.signal, 0.0))

    def on_window(self, window: WindowStats) -> None:
        """Evaluate every rule against one freshly closed window."""
        for rule in self.rules:
            value = self._value(rule, window)
            if rule.breaches(value):
                self._streaks[rule.name] += 1
                if (
                    rule.name not in self._firing
                    and self._streaks[rule.name] >= rule.for_windows
                ):
                    self._firing.add(rule.name)
                    self._transition(rule, FIRING, value, window.end)
            else:
                self._streaks[rule.name] = 0
                if rule.name in self._firing:
                    self._firing.discard(rule.name)
                    self._transition(rule, RESOLVED, value, window.end)

    def _transition(
        self, rule: AlertRule, state: str, value: float, time: int
    ) -> None:
        self.transitions.append(
            AlertTransition(
                time=time,
                rule=rule.name,
                state=state,
                signal=rule.signal,
                kind=rule.kind,
                value=value,
                threshold=rule.threshold,
            )
        )
        self.fault_log.record(
            time,
            state,
            detail=f"rule {rule.name}: {rule.signal}={value:g}",
        )
        if state == FIRING:
            self._tracer.event(
                EVENT_ALERT_FIRING,
                time=time,
                rule=rule.name,
                kind=rule.kind,
                signal=rule.signal,
                value=value,
                threshold=rule.threshold,
            )
        else:
            self._tracer.event(
                EVENT_ALERT_RESOLVED,
                time=time,
                rule=rule.name,
                kind=rule.kind,
                signal=rule.signal,
                value=value,
                threshold=rule.threshold,
            )


def replay_alerts(
    trace: Trace,
    rules: list[AlertRule],
    config: WindowConfig | None = None,
) -> list[AlertTransition]:
    """Re-derive the alert transitions a trace's run would have fired.

    Builds a fresh pipeline + engine (with a null tracer, so the replay
    emits nothing), feeds the trace in delivery order, and returns the
    transitions. Recorded ``alert_firing``/``alert_resolved`` events in
    the trace are ignored as input by the pipeline, so replaying a trace
    that already contains alert events is not a feedback loop. When the
    trace carries recorded promises
    (:data:`~repro.obs.audit.META_PROMISES`), the guarantee auditor is
    rebuilt from them and contributes ``audit_*`` signals exactly as it
    did live, so burn-rate rules replay too.
    """
    pipeline = LivePipeline(config)
    engine = AlertEngine(pipeline, rules, tracer=NULL_TRACER)
    auditor = auditor_from_trace(trace)
    span_observer = None
    if auditor is not None:
        pipeline.add_contributor(auditor.signals)
        span_observer = auditor.observe_span
    feed_trace(pipeline, trace, span_observer=span_observer)
    return engine.transitions


def verify_alert_replay(
    trace: Trace,
    rules: list[AlertRule],
    config: WindowConfig | None = None,
) -> list[str]:
    """Mismatches between recorded alert events and a fresh replay.

    Empty means the trace's recorded ``alert_firing``/``alert_resolved``
    events are exactly what the same rules over the same records produce
    — the alerting analogue of
    :func:`repro.obs.analysis.verify_trace_consistency`.
    """
    recorded = alert_timeline(trace)
    replayed = replay_alerts(trace, rules, config)
    problems: list[str] = []
    if len(recorded) != len(replayed):
        problems.append(
            f"transition count: trace={len(recorded)} replay={len(replayed)}"
        )
    for index, (event, transition) in enumerate(zip(recorded, replayed)):
        expected_name = (
            EVENT_ALERT_FIRING if transition.state == FIRING else EVENT_ALERT_RESOLVED
        )
        observed = (
            event.name,
            event.time,
            event.attrs.get("rule"),
            event.attrs.get("kind"),
            event.attrs.get("signal"),
            event.attrs.get("value"),
            event.attrs.get("threshold"),
        )
        expected = (
            expected_name,
            transition.time,
            transition.rule,
            transition.kind,
            transition.signal,
            transition.value,
            transition.threshold,
        )
        if observed != expected:
            problems.append(
                f"transition {index}: trace={observed} replay={expected}"
            )
    return problems
