"""Portable JSONL trace export/import.

One JSON object per line: a ``header`` record first (format version and
tracer metadata), then one ``span`` record per finished span with its
events inlined as ``[time, name, attrs]`` triples, then one ``event``
record per span-less event. Keys are sorted, so identical runs produce
byte-identical files — the round-trip test asserts
``import_trace(path).summary() == trace.summary()``.

The format is deliberately self-contained: no numpy import (scalar
attribute values from numpy-based callers are converted through their
duck-typed ``.item()``), no pickle, nothing version-fragile.

Format history
--------------
* **v1** — the original record shapes (header / span / event).
* **v2** — causal tracing: traces may contain ``hop_segment`` spans,
  ``ctx_forward`` events, and ``ctx_*`` keys on hop/retry events. The
  record shapes are unchanged and every v1 name kept its value, so v1
  files import through the same reader (:data:`SUPPORTED_VERSIONS`) and
  analyze byte-identically — ``tests/obs/test_export_compat.py`` gates
  this against a committed v1 fixture. New exports are always written at
  the current version.

The reader also tolerates a *truncated tail*: a run killed mid-write cuts
the final line short, and that partial line is dropped (recorded as
``meta["truncated"]``) instead of failing the import — whole corrupt
lines anywhere earlier still raise. Downstream assembly
(:mod:`repro.obs.causal`) degrades gracefully on the missing spans.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.obs.tracer import Span, Trace, TraceEvent

#: Bumped on any record-shape or semantics change (see format history).
FORMAT_VERSION = 2

#: Versions :func:`import_trace` accepts. v1 needs no translation — v2
#: only *added* span/event names — so the shim is pure acceptance.
SUPPORTED_VERSIONS = (1, 2)


def _json_default(value: object) -> object:
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    raise TypeError(
        f"trace attribute of type {type(value).__name__} is not JSON-portable"
    )


def _dump(record: dict[str, object], fh: IO[str]) -> None:
    fh.write(json.dumps(record, sort_keys=True, default=_json_default))
    fh.write("\n")


def export_trace(trace: Trace, path: str | Path) -> Path:
    """Write ``trace`` as JSONL; returns the resolved path."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as fh:
        _dump(
            {
                "kind": "header",
                "format_version": FORMAT_VERSION,
                "meta": trace.meta,
                "n_spans": len(trace.spans),
                "n_events": len(trace.events),
            },
            fh,
        )
        for span in trace.spans:
            _dump(
                {
                    "kind": "span",
                    "span_id": span.span_id,
                    "name": span.name,
                    "start": span.start,
                    "end": span.end,
                    "parent_id": span.parent_id,
                    "attrs": span.attrs,
                    "events": [
                        [event.time, event.name, event.attrs]
                        for event in span.events
                    ],
                },
                fh,
            )
        for event in trace.events:
            _dump(
                {
                    "kind": "event",
                    "time": event.time,
                    "name": event.name,
                    "attrs": event.attrs,
                },
                fh,
            )
    return target


def import_trace(path: str | Path) -> Trace:
    """Read a JSONL trace written by :func:`export_trace`.

    Accepts every version in :data:`SUPPORTED_VERSIONS`. A partial final
    line (truncated tail from a killed run) is dropped and flagged in
    ``trace.meta["truncated"]``; corruption anywhere else raises.
    """
    source = Path(path)
    trace = Trace()
    with source.open("r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    last_lineno = len(lines)
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if lineno == last_lineno:
                # a run killed mid-export cuts the last line short; the
                # records before it are intact and still worth reading
                trace.meta["truncated"] = True
                break
            raise ValueError(
                f"{source}:{lineno}: corrupt trace record"
            ) from None
        kind = record.get("kind")
        if kind == "header":
            version = record.get("format_version")
            if version not in SUPPORTED_VERSIONS:
                raise ValueError(
                    f"{source}: unsupported trace format version "
                    f"{version!r} (supported: {SUPPORTED_VERSIONS})"
                )
            trace.meta = dict(record.get("meta") or {})
        elif kind == "span":
            span = Span(
                span_id=int(record["span_id"]),
                name=str(record["name"]),
                start=int(record["start"]),
                parent_id=(
                    None
                    if record.get("parent_id") is None
                    else int(record["parent_id"])
                ),
                attrs=dict(record.get("attrs") or {}),
                end=(
                    None
                    if record.get("end") is None
                    else int(record["end"])
                ),
            )
            for time, name, attrs in record.get("events") or []:
                span.events.append(
                    TraceEvent(
                        time=int(time), name=str(name), attrs=dict(attrs)
                    )
                )
            trace.spans.append(span)
        elif kind == "event":
            trace.events.append(
                TraceEvent(
                    time=int(record["time"]),
                    name=str(record["name"]),
                    attrs=dict(record.get("attrs") or {}),
                )
            )
        else:
            raise ValueError(
                f"{source}:{lineno}: unknown trace record kind {kind!r}"
            )
    return trace
