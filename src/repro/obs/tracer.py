"""Structured trace spans over simulated time.

A :class:`Span` covers an interval of *simulated* time (a walk, a sample
acquisition, a snapshot query); a :class:`TraceEvent` marks an instant
(a hop, a retry, a fault, one message). Spans nest through ``parent_id``
and carry free-form attributes, so a trace is a forest annotated with
exactly the quantities the paper's cost model is denominated in.

Three tracers share one interface:

* :class:`NullTracer` (the default everywhere) — every call is a no-op
  returning a shared immutable span, so instrumented hot paths pay one
  dynamic dispatch and nothing else;
* :class:`SinkTracer` — builds real spans and hands each *finished* span
  (and each span-less event) to its :class:`TraceSink` instances. The
  canonical sink is :class:`RunMetricsSink`, which derives the
  :class:`~repro.sim.metrics.RunMetrics` counters from the span stream —
  call sites no longer book counters by hand, so the live counters and a
  replayed trace cannot drift apart;
* :class:`RecordingTracer` — a :class:`SinkTracer` that additionally
  retains every span and event for export
  (:func:`repro.obs.export.export_trace`).

Simulated time is threaded explicitly (``time=`` arguments) or read from
a clock passed at construction; a span recorded outside the event loop
uses ``-1``, the same sentinel :class:`~repro.network.faults.FaultEvent`
uses. Wall-clock time never enters a span — profiling is a separate,
clearly-labeled concern (:mod:`repro.obs.profile`).
"""

from __future__ import annotations

from contextlib import AbstractContextManager, nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Protocol

from repro.obs.profile import WallClockProfiler
from repro.obs.registry import DEFAULT_DURATION_BUCKETS, MetricsRegistry
from repro.obs.schema import (
    EVENT_ALERT_FIRING,
    EVENT_ALERT_RESOLVED,
    EVENT_FAULT,
    SPAN_POOL_SERVE,
    SPAN_SNAPSHOT_QUERY,
    SPAN_WALK,
)
from repro.sim.clock import SimulationClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.network.faults import FaultEvent, FaultLog
    from repro.sim.metrics import RunMetrics

#: Simulated-time sentinel for "outside the event loop" (mirrors
#: :class:`repro.network.faults.FaultEvent`).
NO_TIME = -1

ClockSource = Callable[[], int]


@dataclass(slots=True)
class TraceEvent:
    """One instantaneous occurrence, optionally attached to a span."""

    time: int
    name: str
    attrs: dict[str, object] = field(default_factory=dict)


@dataclass(slots=True)
class Span:
    """One interval of simulated time with attributes and child events.

    ``end`` stays ``None`` while the span is open; :meth:`Tracer.end`
    closes it. ``parent_id`` is ``None`` for roots.
    """

    span_id: int
    name: str
    start: int
    parent_id: int | None = None
    attrs: dict[str, object] = field(default_factory=dict)
    events: list[TraceEvent] = field(default_factory=list)
    end: int | None = None

    def set(self, **attrs: object) -> None:
        """Merge attributes into the span."""
        self.attrs.update(attrs)

    def add_event(self, time: int, name: str, **attrs: object) -> None:
        """Append an instantaneous child event."""
        self.events.append(TraceEvent(time=time, name=name, attrs=attrs))

    @property
    def duration(self) -> int:
        """Simulated-time extent (0 while the span is still open)."""
        return 0 if self.end is None else self.end - self.start


class _NullSpan(Span):
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    def set(self, **attrs: object) -> None:
        return None

    def add_event(self, time: int, name: str, **attrs: object) -> None:
        return None


#: Singleton no-op span; identity-checkable (``span is NULL_SPAN``).
NULL_SPAN = _NullSpan(span_id=-1, name="null", start=NO_TIME)


class TraceSink(Protocol):
    """Receives finished spans and span-less events from a tracer.

    ``needs_span_events`` declares whether the sink reads the per-span
    ``events`` list. Sinks that derive everything from span *attributes*
    (metrics, windowed analytics) set it ``False``; producers may then
    skip per-hop/per-message event construction entirely on their hot
    paths (see :attr:`SinkTracer.is_recording`). Sinks that omit the
    attribute are treated as ``True`` — the conservative default.
    """

    #: whether this sink reads ``span.events`` (default: assume it does)
    needs_span_events: bool

    def on_span_end(self, span: Span) -> None:
        """Called exactly once per span, when it is closed."""
        ...

    def on_event(self, event: TraceEvent) -> None:
        """Called for each event recorded outside any span."""
        ...


def _sink_needs_span_events(sink: TraceSink) -> bool:
    return bool(getattr(sink, "needs_span_events", True))


class Tracer:
    """Tracer interface; the base class itself behaves as a no-op."""

    #: True when some attached sink retains per-span event lists, i.e.
    #: producers must construct every span event. False lets hot paths
    #: (per-hop/per-message hooks) skip event construction and surface
    #: aggregate span attributes instead. A plain attribute, not a
    #: property — the hooks read it at message rate.
    is_recording: bool = False

    @property
    def enabled(self) -> bool:
        """False when every call is a no-op (hot paths may early-out)."""
        return False

    def span(
        self,
        name: str,
        time: int | None = None,
        parent: Span | None = None,
        **attrs: object,
    ) -> Span:
        """Open a span starting now (or at the explicit ``time``)."""
        return NULL_SPAN

    def end(self, span: Span, time: int | None = None, **attrs: object) -> None:
        """Close ``span``, merging final attributes."""
        return None

    def event(
        self,
        name: str,
        time: int | None = None,
        span: Span | None = None,
        **attrs: object,
    ) -> None:
        """Record an instantaneous event, attached to ``span`` when given."""
        return None

    def profile(self, section: str) -> AbstractContextManager[None]:
        """Wall-clock section timer (no-op without a profiler attached)."""
        return nullcontext()

    def add_sink(self, sink: TraceSink) -> None:
        """Attach a sink (dropped — a disabled tracer feeds nothing)."""
        return None

    @property
    def has_clock(self) -> bool:
        """True when untimed records get stamped (vacuously, here)."""
        return True

    def set_clock(self, clock: SimulationClock | ClockSource) -> None:
        """Wire a simulated-time source (dropped — nothing to stamp)."""
        return None

    def now(self) -> int:
        """Current simulated time from the wired clock (``-1`` without one).

        Lets code without a time parameter of its own (deep sampling
        internals) stamp side records — fault-log entries — with the same
        time the tracer would stamp an untimed span.
        """
        return NO_TIME


class NullTracer(Tracer):
    """The explicit no-op tracer (equivalent to the base class)."""

    @property
    def meta(self) -> dict[str, object]:
        """Run metadata; a fresh throwaway dict, so writes are dropped."""
        return {}


#: Shared default tracer instance; instrumented constructors fall back to
#: it so disabling tracing allocates nothing.
NULL_TRACER = NullTracer()


class SinkTracer(Tracer):
    """Builds real spans and dispatches finished ones to sinks.

    ``clock`` supplies simulated time when a call omits ``time=``: either
    a :class:`~repro.sim.clock.SimulationClock` or any ``() -> int``
    callable; without one, untimed records use ``-1`` (outside the event
    loop). ``profiler`` enables :meth:`profile` sections. Span ids are
    assigned sequentially, so identical runs produce identical traces.
    """

    def __init__(
        self,
        sinks: list[TraceSink] | None = None,
        clock: SimulationClock | ClockSource | None = None,
        profiler: WallClockProfiler | None = None,
        meta: dict[str, object] | None = None,
    ) -> None:
        self._sinks: list[TraceSink] = list(sinks) if sinks else []
        self.is_recording = any(
            _sink_needs_span_events(sink) for sink in self._sinks
        )
        self._clock: ClockSource | None
        if isinstance(clock, SimulationClock):
            self._clock = lambda: clock.now
        else:
            self._clock = clock
        self._profiler = profiler
        self.meta: dict[str, object] = dict(meta) if meta else {}
        self._next_id = 1
        self.spans_started = 0
        self.spans_ended = 0

    @property
    def enabled(self) -> bool:
        return True

    @property
    def profiler(self) -> WallClockProfiler | None:
        return self._profiler

    def add_sink(self, sink: TraceSink) -> None:
        """Attach another sink (receives only spans finished afterwards)."""
        self._sinks.append(sink)
        if _sink_needs_span_events(sink):
            self.is_recording = True

    @property
    def has_clock(self) -> bool:
        """True once a simulated-time source is wired in."""
        return self._clock is not None

    def set_clock(self, clock: SimulationClock | ClockSource) -> None:
        """Wire a simulated-time source after construction.

        The component driving the run (e.g. a session's step loop) wires
        its clock in so records whose call sites omit ``time=`` are
        stamped with the current simulated time instead of ``-1``;
        refuses to replace an existing clock — two drivers stamping one
        tracer would interleave nondeterministically.
        """
        if self._clock is not None:
            raise ValueError("tracer already has a clock")
        if isinstance(clock, SimulationClock):
            self._clock = lambda: clock.now
        else:
            self._clock = clock

    def now(self) -> int:
        return self._clock() if self._clock is not None else NO_TIME

    def _now(self, time: int | None) -> int:
        if time is not None:
            return time
        if self._clock is not None:
            return self._clock()
        return NO_TIME

    def span(
        self,
        name: str,
        time: int | None = None,
        parent: Span | None = None,
        **attrs: object,
    ) -> Span:
        span = Span(
            span_id=self._next_id,
            name=name,
            start=self._now(time),
            parent_id=(
                parent.span_id
                if parent is not None and parent is not NULL_SPAN
                else None
            ),
            # the ** kwargs dict is freshly built per call — safe to own
            attrs=attrs,
        )
        self._next_id += 1
        self.spans_started += 1
        return span

    def end(self, span: Span, time: int | None = None, **attrs: object) -> None:
        if span is NULL_SPAN or span.end is not None:
            return
        span.attrs.update(attrs)
        span.end = max(self._now(time), span.start)
        self.spans_ended += 1
        for sink in self._sinks:
            sink.on_span_end(span)

    def event(
        self,
        name: str,
        time: int | None = None,
        span: Span | None = None,
        **attrs: object,
    ) -> None:
        event = TraceEvent(time=self._now(time), name=name, attrs=attrs)
        if span is not None and span is not NULL_SPAN:
            span.events.append(event)
            return
        for sink in self._sinks:
            sink.on_event(event)

    def profile(self, section: str) -> AbstractContextManager[None]:
        if self._profiler is None:
            return nullcontext()
        return self._profiler.section(section)


@dataclass
class Trace:
    """A finished trace: all retained spans, span-less events, metadata."""

    spans: list[Span] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)

    def spans_named(self, name: str) -> list[Span]:
        """All spans with the given name, in id order."""
        return [span for span in self.spans if span.name == name]

    def summary(self) -> dict[str, int]:
        """Deterministic shape digest: span/event counts by name.

        Span-attached events are prefixed ``event:``, span-less ones
        ``loose:`` — the JSONL round-trip test asserts this digest is
        identical after export → import.
        """
        digest: dict[str, int] = {}
        for span in self.spans:
            key = f"span:{span.name}"
            digest[key] = digest.get(key, 0) + 1
            for event in span.events:
                ekey = f"event:{event.name}"
                digest[ekey] = digest.get(ekey, 0) + 1
        for event in self.events:
            lkey = f"loose:{event.name}"
            digest[lkey] = digest.get(lkey, 0) + 1
        return dict(sorted(digest.items()))


class _RecorderSink:
    """Internal sink retaining everything for :class:`RecordingTracer`."""

    needs_span_events = True  # exports must carry every span event

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[TraceEvent] = []

    def on_span_end(self, span: Span) -> None:
        self.spans.append(span)

    def on_event(self, event: TraceEvent) -> None:
        self.events.append(event)


class RecordingTracer(SinkTracer):
    """A :class:`SinkTracer` that retains spans and events for export."""

    def __init__(
        self,
        sinks: list[TraceSink] | None = None,
        clock: SimulationClock | ClockSource | None = None,
        profiler: WallClockProfiler | None = None,
        meta: dict[str, object] | None = None,
    ) -> None:
        super().__init__(sinks=sinks, clock=clock, profiler=profiler, meta=meta)
        self._recorder = _RecorderSink()
        self.add_sink(self._recorder)

    def trace(self) -> Trace:
        """The trace recorded so far (finished spans, in end order)."""
        return Trace(
            spans=sorted(self._recorder.spans, key=lambda s: s.span_id),
            events=list(self._recorder.events),
            meta=dict(self.meta),
        )


# ----------------------------------------------------------------------
# canonical sinks
# ----------------------------------------------------------------------


def _as_int(value: object, default: int = 0) -> int:
    """Attribute values are typed ``object``; coerce numbers, else default."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return int(value)
    return default


class RunMetricsSink:
    """Derives :class:`~repro.sim.metrics.RunMetrics` counters from spans.

    This is the *single source of truth* for the counter semantics; the
    replay side (:func:`repro.obs.analysis.run_metrics_from_trace`) feeds
    an imported trace through this same class, which is why the
    trace-vs-live consistency check can demand exact equality:

    * ``snapshot_query`` span → ``snapshot_queries`` +1; ``samples_total``
      / ``samples_fresh`` / ``samples_retained`` from the span's
      ``n_total`` / ``n_fresh`` / ``n_retained``; ``degraded_estimates``
      +1 when ``degraded`` is true.
    * ``walk`` span → ``walks_retried`` += ``attempts`` - 1;
      ``walks_failed`` +1 when ``outcome == "failed"``.
    * ``pool_serve`` span → ``pool_hits`` += ``n_hit``;
      ``pool_misses`` += ``n_miss`` (shared-sample-pool reuse accounting).
    * span-less ``fault`` event → ``faults_injected`` +1.
    * span-less ``alert_firing`` / ``alert_resolved`` event →
      ``alerts_fired`` / ``alerts_resolved`` +1 (live alert engine
      transitions; see :mod:`repro.obs.alerts`).
    """

    #: everything above reads span *attributes* only — producers may
    #: skip per-event construction when this is the only kind of sink
    needs_span_events = False

    def __init__(self, metrics: "RunMetrics") -> None:
        self.metrics = metrics

    def on_span_end(self, span: Span) -> None:
        metrics = self.metrics
        if span.name == SPAN_SNAPSHOT_QUERY:
            metrics.snapshot_queries += 1
            metrics.samples_total += _as_int(span.attrs.get("n_total"))
            metrics.samples_fresh += _as_int(span.attrs.get("n_fresh"))
            metrics.samples_retained += _as_int(span.attrs.get("n_retained"))
            if bool(span.attrs.get("degraded", False)):
                metrics.degraded_estimates += 1
        elif span.name == SPAN_WALK:
            attempts = _as_int(span.attrs.get("attempts"), default=1)
            metrics.walks_retried += max(0, attempts - 1)
            if span.attrs.get("outcome") == "failed":
                metrics.walks_failed += 1
        elif span.name == SPAN_POOL_SERVE:
            metrics.pool_hits += _as_int(span.attrs.get("n_hit"))
            metrics.pool_misses += _as_int(span.attrs.get("n_miss"))

    def on_event(self, event: TraceEvent) -> None:
        if event.name == EVENT_FAULT:
            self.metrics.faults_injected += 1
        elif event.name == EVENT_ALERT_FIRING:
            self.metrics.alerts_fired += 1
        elif event.name == EVENT_ALERT_RESOLVED:
            self.metrics.alerts_resolved += 1


class RegistrySink:
    """Maintains live span/event counters and sim-duration histograms."""

    needs_span_events = True  # counts every span-attached event by name

    def __init__(
        self,
        registry: MetricsRegistry,
        duration_buckets: tuple[float, ...] = DEFAULT_DURATION_BUCKETS,
    ) -> None:
        self.registry = registry
        self._buckets = duration_buckets

    def on_span_end(self, span: Span) -> None:
        self.registry.counter(f"spans.{span.name}").inc()
        for event in span.events:
            self.registry.counter(f"events.{event.name}").inc()
        self.registry.histogram(
            f"span_duration.{span.name}", self._buckets
        ).observe(float(span.duration))

    def on_event(self, event: TraceEvent) -> None:
        self.registry.counter(f"events.{event.name}").inc()


def bridge_fault_log(log: "FaultLog", tracer: Tracer) -> None:
    """Mirror every :class:`~repro.network.faults.FaultEvent` as a trace event.

    Subscribes to the log keyed by the tracer's identity, so bridging the
    same log to the same tracer twice (e.g. a fault plan shared between an
    operator and a protocol sampler) records each fault once.
    """
    if not tracer.enabled:
        return

    def forward(event: "FaultEvent") -> None:
        tracer.event(
            EVENT_FAULT,
            time=event.time,
            kind=event.kind,
            walker_id=event.walker_id,
            node=event.node,
            detail=event.detail,
        )

    log.subscribe(forward, key=f"obs-tracer-{id(tracer)}")
