"""Deterministic metric instruments: counters, gauges, histograms.

Unlike the per-run :class:`~repro.sim.metrics.RunMetrics` (fixed counter
fields + time series), the registry is an open namespace keyed by metric
name, meant for instrumentation sinks and analysis code. Histograms use
*fixed, explicit bucket boundaries* — never quantile sketches or adaptive
buckets — so two runs observing the same values produce byte-identical
snapshots, which the trace round-trip and determinism tests rely on.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field

#: Default buckets for simulated-time durations (ticks). Chosen to cover
#: one hop (1) through a long supervised walk with retries (~1000).
DEFAULT_DURATION_BUCKETS: tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1000.0,
)


@dataclass
class Counter:
    """Monotone event count."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-boundary histogram.

    ``boundaries`` are strictly increasing upper bounds; an observation
    ``v`` lands in the first bucket with ``v <= bound``, and anything
    above the last bound lands in the implicit overflow bucket, so
    ``counts`` has ``len(boundaries) + 1`` entries. ``total`` and
    ``count`` allow exact mean reconstruction without per-sample storage.
    """

    name: str
    boundaries: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0

    def __post_init__(self) -> None:
        if not self.boundaries:
            raise ValueError(f"histogram {self.name!r} needs >= 1 boundary")
        if any(
            b2 <= b1 for b1, b2 in zip(self.boundaries, self.boundaries[1:])
        ):
            raise ValueError(
                f"histogram {self.name!r} boundaries must be strictly "
                f"increasing, got {self.boundaries}"
            )
        if not self.counts:
            self.counts = [0] * (len(self.boundaries) + 1)

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value

    def mean(self) -> float:
        if self.count == 0:
            raise ValueError(f"histogram {self.name!r} is empty")
        return self.total / self.count

    def bucket_labels(self) -> list[str]:
        """Human-readable per-bucket range labels (upper-bound inclusive)."""
        labels = [f"<= {self.boundaries[0]:g}"]
        for low, high in zip(self.boundaries, self.boundaries[1:]):
            labels.append(f"({low:g}, {high:g}]")
        labels.append(f"> {self.boundaries[-1]:g}")
        return labels


class MetricsRegistry:
    """Name-keyed instrument store with idempotent registration."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = Counter(name)
            self._counters[name] = found
        return found

    def gauge(self, name: str) -> Gauge:
        found = self._gauges.get(name)
        if found is None:
            found = Gauge(name)
            self._gauges[name] = found
        return found

    def histogram(
        self,
        name: str,
        boundaries: tuple[float, ...] = DEFAULT_DURATION_BUCKETS,
    ) -> Histogram:
        """Get (or create) the named histogram.

        Re-registering an existing histogram with *different* boundaries
        raises — silently switching bucketing mid-run would make the
        snapshot non-deterministic in exactly the way this module exists
        to prevent.
        """
        found = self._histograms.get(name)
        if found is None:
            found = Histogram(name, tuple(boundaries))
            self._histograms[name] = found
        elif found.boundaries != tuple(boundaries):
            raise ValueError(
                f"histogram {name!r} already registered with boundaries "
                f"{found.boundaries}, got {tuple(boundaries)}"
            )
        return found

    def snapshot(self) -> dict[str, object]:
        """Deterministic, JSON-ready dump of every instrument (sorted)."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: {
                    "boundaries": list(histogram.boundaries),
                    "counts": list(histogram.counts),
                    "count": histogram.count,
                    "total": histogram.total,
                }
                for name, histogram in sorted(self._histograms.items())
            },
        }
