"""Wall-clock section profiling for finding hot paths.

This is the one module in the instrumented stack allowed to read the
wall clock: simulation logic itself must stay wall-clock-free (digest-lint
DGL002), but *how long the host spends computing* a sim-time span is
exactly what a profiler has to measure. Sections are keyed by name so a
section opened inside a sim-time span (e.g. ``spectral_recompute`` inside
a ``sample_acquisition`` span) attributes host cost to that phase.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator


@dataclass
class SectionStats:
    """Accumulated host cost for one named section."""

    name: str
    calls: int = 0
    total_ns: int = 0

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def mean_ns(self) -> float:
        if self.calls == 0:
            raise ValueError(f"section {self.name!r} was never entered")
        return self.total_ns / self.calls


class WallClockProfiler:
    """Accumulates wall-clock time per named section.

    Re-entrant for *distinct* section names (nesting ``a`` inside ``b``
    books full time to both); re-entering the *same* name recursively
    would double-count, so it raises.
    """

    def __init__(self) -> None:
        self._sections: dict[str, SectionStats] = {}
        self._open: set[str] = set()

    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        if name in self._open:
            raise RuntimeError(f"profiler section {name!r} re-entered")
        self._open.add(name)
        started = time.perf_counter_ns()
        try:
            yield
        finally:
            elapsed = time.perf_counter_ns() - started
            self._open.discard(name)
            stats = self._sections.get(name)
            if stats is None:
                stats = SectionStats(name)
                self._sections[name] = stats
            stats.calls += 1
            stats.total_ns += elapsed

    def stats(self, name: str) -> SectionStats:
        found = self._sections.get(name)
        if found is None:
            raise KeyError(f"no profiled section named {name!r}")
        return found

    def report(self) -> dict[str, dict[str, float]]:
        """JSON-ready per-section summary, hottest section first."""
        ordered = sorted(
            self._sections.values(), key=lambda s: (-s.total_ns, s.name)
        )
        return {
            stats.name: {
                "calls": float(stats.calls),
                "total_ms": stats.total_ms,
                "mean_us": stats.total_ns / stats.calls / 1e3,
            }
            for stats in ordered
        }
