"""Per-query guarantee auditing: promised vs. achieved ``(ε, p)``.

The paper's contract is live — at every update time the estimate must
satisfy ``|X̂ − X| <= ε`` with probability ``p`` — so the reproduction
should judge it live too. A :class:`GuaranteeAuditor` is registered with
each query's *promise* (its precision parameters) and observes every
:class:`~repro.core.snapshot.SnapshotEstimate` the session produces for
it. An observation violates the promise when the evaluator had to
degrade it, or when its honest re-statement (``achieved_epsilon`` /
``achieved_confidence``) falls short of what was promised.

SLO framing: a promise of confidence ``p`` budgets a ``1 − p`` fraction
of violating snapshots. The **burn rate** over the recent observation
window is::

    burn = violating_fraction / (1 - p)

``burn <= 1`` means the query is living within its error budget;
``burn > 1`` means it is burning budget faster than the promise allows
(the standard SRE reading, per-query). :meth:`GuaranteeAuditor.signals`
exposes the worst burn rate and the overall recent violation fraction as
live-pipeline contributor signals, so burn-rate alert rules
(:mod:`repro.obs.alerts`) can page on them; :meth:`verdict` renders one
query's full audit as an immutable :class:`AuditVerdict`.

This module deliberately imports nothing from ``repro.core`` at runtime
(the session imports *us*); estimates are duck-typed on the
``SnapshotEstimate`` fields it reads.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import QueryError
from repro.obs.schema import SPAN_SNAPSHOT_QUERY

if TYPE_CHECKING:  # pragma: no cover - layering: core imports obs.audit
    from repro.core.snapshot import SnapshotEstimate
    from repro.obs.tracer import Span, Trace

#: trace meta key under which a session records every query's promise
#: (``{query_id: {"epsilon": ..., "confidence": ...}}``), so a replayed
#: trace can rebuild the auditor — and therefore the burn-rate signals —
#: without the session that produced it
META_PROMISES = "promises"


@dataclass(frozen=True)
class GuaranteePromise:
    """One query's declared precision contract."""

    query_id: str
    epsilon: float
    confidence: float

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise QueryError(
                f"promise for {self.query_id!r}: confidence must be in "
                f"(0, 1), got {self.confidence}"
            )
        if self.epsilon <= 0.0:
            raise QueryError(
                f"promise for {self.query_id!r}: epsilon must be > 0, "
                f"got {self.epsilon}"
            )

    @property
    def error_budget(self) -> float:
        """Allowed violating fraction (``1 - p``)."""
        return 1.0 - self.confidence


@dataclass(frozen=True)
class AuditVerdict:
    """One query's audit standing at a point in the run."""

    query_id: str
    promised_epsilon: float
    promised_confidence: float
    snapshots: int
    violations: int
    recent_violations: int
    recent_window: int
    burn_rate: float
    ok: bool

    @property
    def violation_fraction(self) -> float:
        return self.violations / self.snapshots if self.snapshots else 0.0


class GuaranteeAuditor:
    """Continuously compares achieved precision against each promise.

    ``recent_window`` bounds the burn-rate horizon: the rate is computed
    over the last that-many observations per query (bounded memory, and
    a recovered query stops paging once the bad snapshots age out).
    """

    def __init__(self, recent_window: int = 16) -> None:
        if recent_window < 1:
            raise QueryError(
                f"recent_window must be >= 1, got {recent_window}"
            )
        self.recent_window = recent_window
        self._promises: dict[str, GuaranteePromise] = {}
        self._recent: dict[str, deque[bool]] = {}
        self._snapshots: dict[str, int] = {}
        self._violations: dict[str, int] = {}

    def register(
        self, query_id: str, epsilon: float, confidence: float
    ) -> GuaranteePromise:
        """Declare one query's promise (idempotent for equal promises)."""
        promise = GuaranteePromise(query_id, epsilon, confidence)
        existing = self._promises.get(query_id)
        if existing is not None and existing != promise:
            raise QueryError(
                f"query {query_id!r} already registered with a different "
                f"promise"
            )
        self._promises[query_id] = promise
        self._recent.setdefault(
            query_id, deque(maxlen=self.recent_window)
        )
        self._snapshots.setdefault(query_id, 0)
        self._violations.setdefault(query_id, 0)
        return promise

    def query_ids(self) -> list[str]:
        return sorted(self._promises)

    def violates(self, query_id: str, estimate: "SnapshotEstimate") -> bool:
        """Does this estimate break the query's promise?

        A degraded estimate is a violation by definition (the evaluator
        itself declared the contract unmet); additionally, an honest
        re-statement that promises less than the contract — wider
        interval at the promised confidence, or less confidence at the
        promised interval — violates even if the degraded flag were ever
        decoupled from it.
        """
        promise = self._promise(query_id)
        if estimate.degraded:
            return True
        achieved_eps = estimate.achieved_epsilon
        if achieved_eps is not None and achieved_eps > promise.epsilon:
            return True
        achieved_conf = estimate.achieved_confidence
        return achieved_conf is not None and achieved_conf < promise.confidence

    def observe(
        self, query_id: str, time: int, estimate: "SnapshotEstimate"
    ) -> bool:
        """Record one snapshot observation; returns its violation flag."""
        violated = self.violates(query_id, estimate)
        self._snapshots[query_id] += 1
        if violated:
            self._violations[query_id] += 1
        self._recent[query_id].append(violated)
        return violated

    def _promise(self, query_id: str) -> GuaranteePromise:
        try:
            return self._promises[query_id]
        except KeyError:
            raise QueryError(
                f"no promise registered for query {query_id!r}"
            ) from None

    def burn_rate(self, query_id: str) -> float:
        """Recent violating fraction over the promise's error budget."""
        promise = self._promise(query_id)
        recent = self._recent[query_id]
        if not recent:
            return 0.0
        fraction = sum(recent) / len(recent)
        return fraction / promise.error_budget

    def verdict(self, query_id: str) -> AuditVerdict:
        """The query's current audit standing."""
        promise = self._promise(query_id)
        recent = self._recent[query_id]
        burn = self.burn_rate(query_id)
        return AuditVerdict(
            query_id=query_id,
            promised_epsilon=promise.epsilon,
            promised_confidence=promise.confidence,
            snapshots=self._snapshots[query_id],
            violations=self._violations[query_id],
            recent_violations=sum(recent),
            recent_window=self.recent_window,
            burn_rate=burn,
            ok=burn <= 1.0,
        )

    def verdicts(self) -> dict[str, AuditVerdict]:
        """All verdicts, keyed by query id (sorted)."""
        return {query_id: self.verdict(query_id) for query_id in self.query_ids()}

    def signals(self) -> dict[str, float]:
        """Live-pipeline contributor signals (worst-case across queries)."""
        burns = [self.burn_rate(query_id) for query_id in self._promises]
        recents = [len(r) for r in self._recent.values()]
        violations = [sum(r) for r in self._recent.values()]
        total_recent = sum(recents)
        return {
            "audit_burn_rate": max(burns, default=0.0),
            "audit_violation_fraction": (
                sum(violations) / total_recent if total_recent else 0.0
            ),
        }

    def observe_span(self, span: "Span") -> bool | None:
        """Observe one replayed ``snapshot_query`` span (else no-op).

        The replay-side twin of the session calling :meth:`observe` with
        the real :class:`~repro.core.snapshot.SnapshotEstimate`: the span
        carries the fields the audit reads (``degraded`` always, the
        honest re-statements only when set — exactly the live layout).
        Returns the violation flag, or ``None`` when the span is not an
        audited snapshot.
        """
        if span.name != SPAN_SNAPSHOT_QUERY:
            return None
        query_id = span.attrs.get("query")
        if not isinstance(query_id, str) or query_id not in self._promises:
            return None
        time = span.end if span.end is not None else span.start
        observation = _SpanObservation(
            degraded=bool(span.attrs.get("degraded", False)),
            achieved_epsilon=_as_optional_float(
                span.attrs.get("achieved_epsilon")
            ),
            achieved_confidence=_as_optional_float(
                span.attrs.get("achieved_confidence")
            ),
        )
        return self.observe(query_id, time, observation)  # type: ignore[arg-type]


@dataclass(frozen=True)
class _SpanObservation:
    """Duck-typed stand-in for a SnapshotEstimate during trace replay."""

    degraded: bool
    achieved_epsilon: float | None
    achieved_confidence: float | None


def _as_optional_float(value: object) -> float | None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def auditor_from_trace(
    trace: "Trace", recent_window: int = 16
) -> GuaranteeAuditor | None:
    """Rebuild an auditor from a trace's recorded promises (or ``None``).

    Reads :data:`META_PROMISES` from the trace metadata; a trace
    produced without a session (or before promises were recorded) has
    none, and replay proceeds without audit signals.
    """
    raw = trace.meta.get(META_PROMISES)
    if not isinstance(raw, dict) or not raw:
        return None
    auditor = GuaranteeAuditor(recent_window=recent_window)
    for query_id in sorted(raw):
        promise = raw[query_id]
        if not isinstance(promise, dict):
            raise QueryError(
                f"malformed promise for query {query_id!r} in trace meta"
            )
        auditor.register(
            str(query_id),
            float(promise["epsilon"]),
            float(promise["confidence"]),
        )
    return auditor
