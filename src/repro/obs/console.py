"""The single sanctioned stdout sink for ``src/repro``.

digest-lint DGL007 bans bare ``print()`` inside the package so that
simulation and library code cannot quietly grow ad-hoc console output;
experiments and the CLI report through :func:`emit` instead. Keeping one
chokepoint makes output redirection (and future ``--quiet``/log-level
handling) a one-line change, and resolving ``sys.stdout`` at call time
keeps pytest's ``capsys`` capture working.
"""

from __future__ import annotations

import sys
from typing import TextIO


def emit(text: str = "", *, stream: TextIO | None = None) -> None:
    """Write one line of user-facing output.

    ``stream`` defaults to the *current* ``sys.stdout`` (looked up per
    call, not at import), mirroring ``print``'s capture-friendly
    behaviour without being ``print``.
    """
    target = stream if stream is not None else sys.stdout
    target.write(text + "\n")
