"""Post-hoc trace analysis: the numbers behind the paper's figures.

Everything here works on an exported/imported :class:`~repro.obs.tracer.Trace`
alone — no simulation re-run. The reconstruction functions mirror the live
bookkeeping exactly:

* :func:`run_metrics_from_trace` feeds the trace through the *same*
  :class:`~repro.obs.tracer.RunMetricsSink` the engine uses live, so
  :func:`verify_trace_consistency` can demand exact counter equality;
* :func:`message_attribution` rebuilds the per-category message cost
  (first-attempt vs. retry vs. probe vs. advertisement) from walk-span
  events, whose bucketing mirrors the
  :class:`~repro.network.messaging.MessageLedger` categories;
* :func:`walk_latency_histogram`, :func:`fault_timeline`,
  :func:`degraded_timeline` and :func:`trigger_breakdown` reconstruct the
  diagnostic views the ``repro-digest trace summarize`` CLI prints;
* :func:`folded_stacks` emits flamegraph-style folded stacks over
  simulated time;
* the causal layer (:mod:`repro.obs.causal`) is re-exported here:
  :func:`assemble` joins hop segments back into per-walk causal trees,
  :func:`hop_latency_attribution` splits transit latency by category,
  and :func:`critical_paths` names the hop chain that bounded each walk
  batch (``repro-digest trace critpath``).
"""

from __future__ import annotations

from repro.obs.causal import (
    CausalAssembly as CausalAssembly,
    CausalHop as CausalHop,
    CriticalPath as CriticalPath,
    WalkTree as WalkTree,
    assemble as assemble,
    critical_paths as critical_paths,
    hop_latency_attribution as hop_latency_attribution,
)
from repro.obs.registry import DEFAULT_DURATION_BUCKETS, Histogram
from repro.obs.schema import (
    EVENT_ADVERTISEMENT,
    EVENT_ALERT_FIRING,
    EVENT_ALERT_RESOLVED,
    EVENT_FAULT,
    EVENT_MESSAGE,
    EVENT_PROBE,
    SPAN_POOL_SERVE,
    SPAN_SHARED_WALK_BATCH,
    SPAN_SNAPSHOT_QUERY,
    SPAN_WALK,
)
from repro.obs.tracer import RunMetricsSink, Span, Trace, TraceEvent
from repro.sim.metrics import RunMetrics

#: The scalar counters RunMetricsSink derives; the consistency check
#: compares exactly these.
COUNTER_FIELDS = (
    "snapshot_queries",
    "samples_total",
    "samples_fresh",
    "samples_retained",
    "walks_retried",
    "walks_failed",
    "faults_injected",
    "degraded_estimates",
    "pool_hits",
    "pool_misses",
    "alerts_fired",
    "alerts_resolved",
)


def _as_int(value: object, default: int = 0) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return int(value)
    return default


def run_metrics_from_trace(trace: Trace) -> RunMetrics:
    """Reconstruct the run's counters by replaying the span stream.

    Uses the same :class:`~repro.obs.tracer.RunMetricsSink` the live
    engine attaches, so the counter semantics cannot drift between the
    live path and the replay path.
    """
    metrics = RunMetrics()
    sink = RunMetricsSink(metrics)
    for span in trace.spans:
        sink.on_span_end(span)
    for event in trace.events:
        sink.on_event(event)
    return metrics


def counter_dict(metrics: RunMetrics) -> dict[str, int]:
    """The scalar counters as a plain dict (fixed field order)."""
    return {name: int(getattr(metrics, name)) for name in COUNTER_FIELDS}


def verify_trace_consistency(trace: Trace, live: RunMetrics) -> list[str]:
    """Mismatches between replayed-trace counters and live counters.

    Returns one ``"name: trace=X live=Y"`` line per differing counter —
    empty means the trace fully accounts for the live run (the CI gate).
    """
    replayed = counter_dict(run_metrics_from_trace(trace))
    actual = counter_dict(live)
    return [
        f"{name}: trace={replayed[name]} live={actual[name]}"
        for name in COUNTER_FIELDS
        if replayed[name] != actual[name]
    ]


def message_attribution(trace: Trace) -> dict[str, int]:
    """Per-category message counts rebuilt from span events.

    Buckets mirror the :class:`~repro.network.messaging.MessageLedger`
    categories: ``walk_steps`` / ``sample_returns`` are first-attempt
    traffic, ``retries`` is all traffic of attempts >= 2, ``probes``
    (request + reply per cache miss) and ``advertisements`` sum to
    ``control``.
    """
    attribution = {
        "walk_steps": 0,
        "sample_returns": 0,
        "retries": 0,
        "probes": 0,
        "advertisements": 0,
    }
    for span in trace.spans_named(SPAN_WALK):
        for event in span.events:
            if event.name == EVENT_MESSAGE:
                category = event.attrs.get("category")
                if category == "walk":
                    attribution["walk_steps"] += 1
                elif category == "return":
                    attribution["sample_returns"] += 1
                elif category == "retry":
                    attribution["retries"] += 1
            elif event.name == EVENT_PROBE:
                attribution["probes"] += _as_int(
                    event.attrs.get("messages"), default=2
                )
    for event in trace.events:
        if event.name == EVENT_ADVERTISEMENT:
            attribution["advertisements"] += 1
    attribution["control"] = (
        attribution["probes"] + attribution["advertisements"]
    )
    attribution["total"] = (
        attribution["walk_steps"]
        + attribution["sample_returns"]
        + attribution["retries"]
        + attribution["control"]
    )
    return attribution


def shared_walk_attribution(trace: Trace) -> dict[str, dict[str, int]]:
    """Per-query accounting of pool serving and coalesced walk batches.

    Every ``pool_serve`` span names its consuming query; every
    ``shared_walk_batch`` span (and, in protocol mode, every ``walk`` span
    launched by a batch) carries the comma-joined ids of *all* its
    consumers. This reconstructs, per query id: how many pooled samples it
    reused (``pool_hits``), how many fresh draws it triggered
    (``pool_misses``), how many coalesced batches it consumed from
    (``shared_batches``) with how many delivered samples
    (``batch_samples``), and how many attributed protocol walks served it
    (``walks``) — the per-query view of costs that the shared substrate
    pays only once.
    """
    per_query: dict[str, dict[str, int]] = {}

    def entry(query_id: str) -> dict[str, int]:
        return per_query.setdefault(
            query_id,
            {
                "pool_hits": 0,
                "pool_misses": 0,
                "shared_batches": 0,
                "batch_samples": 0,
                "walks": 0,
            },
        )

    for span in trace.spans_named(SPAN_POOL_SERVE):
        consumer = str(span.attrs.get("consumer", "?"))
        record = entry(consumer)
        record["pool_hits"] += _as_int(span.attrs.get("n_hit"))
        record["pool_misses"] += _as_int(span.attrs.get("n_miss"))
    for span in trace.spans_named(SPAN_SHARED_WALK_BATCH):
        consumers = str(span.attrs.get("consumers", ""))
        for query_id in filter(None, consumers.split(",")):
            record = entry(query_id)
            record["shared_batches"] += 1
            record["batch_samples"] += _as_int(span.attrs.get("n_drawn"))
    for span in trace.spans_named(SPAN_WALK):
        consumers = str(span.attrs.get("consumers", ""))
        for query_id in filter(None, consumers.split(",")):
            entry(query_id)["walks"] += 1
    return dict(sorted(per_query.items()))


def walk_latency_histogram(
    trace: Trace,
    boundaries: tuple[float, ...] = DEFAULT_DURATION_BUCKETS,
) -> Histogram:
    """Simulated-time latency distribution of finished walks."""
    histogram = Histogram("walk_latency", tuple(boundaries))
    for span in trace.spans_named(SPAN_WALK):
        if span.end is not None:
            histogram.observe(float(span.duration))
    return histogram


def walk_outcomes(trace: Trace) -> dict[str, int]:
    """Finished walks by outcome (``completed`` / ``failed``)."""
    counts: dict[str, int] = {}
    for span in trace.spans_named(SPAN_WALK):
        outcome = str(span.attrs.get("outcome", "open"))
        counts[outcome] = counts.get(outcome, 0) + 1
    return dict(sorted(counts.items()))


def fault_timeline(trace: Trace) -> list[TraceEvent]:
    """All fault events in time order (time ``-1`` = outside the loop)."""
    return sorted(
        (event for event in trace.events if event.name == EVENT_FAULT),
        key=lambda event: event.time,
    )


def alert_timeline(trace: Trace) -> list[TraceEvent]:
    """All alert firing/resolved transitions in time order.

    Alert transitions are recorded as loose schema events by the live
    alert engine (:mod:`repro.obs.alerts`), so a finished trace replays
    the alerting history without re-running the pipeline. The sort is
    stable: same-tick transitions keep their emission order.
    """
    return sorted(
        (
            event
            for event in trace.events
            if event.name in (EVENT_ALERT_FIRING, EVENT_ALERT_RESOLVED)
        ),
        key=lambda event: event.time,
    )


def degraded_timeline(trace: Trace) -> list[Span]:
    """Snapshot-query spans whose estimate was honestly degraded."""
    return [
        span
        for span in trace.spans_named(SPAN_SNAPSHOT_QUERY)
        if bool(span.attrs.get("degraded", False))
    ]


def trigger_breakdown(trace: Trace) -> dict[str, int]:
    """Snapshot queries by trigger reason (bootstrap/periodic/...)."""
    counts: dict[str, int] = {}
    for span in trace.spans_named(SPAN_SNAPSHOT_QUERY):
        reason = str(span.attrs.get("trigger", "unknown"))
        counts[reason] = counts.get(reason, 0) + 1
    return dict(sorted(counts.items()))


def folded_stacks(trace: Trace, weight: str = "time") -> dict[str, int]:
    """Flamegraph folded stacks (``parent;child value`` semantics).

    ``weight="time"`` sums each span's *self* simulated time (duration
    minus finished children); ``weight="count"`` counts spans per stack.
    Feed the result to any standard flamegraph renderer.
    """
    if weight not in ("time", "count"):
        raise ValueError(f"weight must be 'time' or 'count', got {weight!r}")
    spans_by_id = {span.span_id: span for span in trace.spans}
    children_time: dict[int, int] = {}
    for span in trace.spans:
        if span.parent_id is not None and span.end is not None:
            children_time[span.parent_id] = (
                children_time.get(span.parent_id, 0) + span.duration
            )
    stacks: dict[str, int] = {}
    for span in trace.spans:
        if span.end is None:
            continue
        path = [span.name]
        cursor = span
        while cursor.parent_id is not None:
            parent = spans_by_id.get(cursor.parent_id)
            if parent is None:
                break
            path.append(parent.name)
            cursor = parent
        stack = ";".join(reversed(path))
        value = (
            max(0, span.duration - children_time.get(span.span_id, 0))
            if weight == "time"
            else 1
        )
        stacks[stack] = stacks.get(stack, 0) + value
    return dict(sorted(stacks.items()))
