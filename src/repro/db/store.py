"""Per-node local tuple store.

Each overlay node holds a disjoint horizontal fragment of the relation
``R``. The store supports the operations the system needs at tuple
granularity:

* autonomous local modification (insert / update / delete, Section II);
* uniform local sampling in O(1) — the second stage of the two-stage
  sampling scheme (Section III);
* content-size queries ``m_v`` used as the node weight for the first stage.

Tuple ids are globally unique integers assigned by the database layer; the
store indexes rows by id with an id list + position map so delete and
uniform choice are both constant time (swap-pop).
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro.errors import StoreError


class LocalStore:
    """Mutable fragment of the relation held by a single node.

    Parameters
    ----------
    attributes:
        Ordered attribute names of the relation schema. Rows are stored as
        plain dicts keyed by these names; unknown keys are rejected so a
        schema mismatch fails loudly at the write site.
    """

    def __init__(self, attributes: tuple[str, ...]) -> None:
        if not attributes:
            raise StoreError("schema needs at least one attribute")
        if len(set(attributes)) != len(attributes):
            raise StoreError(f"duplicate attribute names in {attributes}")
        self._attributes = tuple(attributes)
        self._rows: dict[int, dict[str, float]] = {}
        self._ids: list[int] = []
        self._positions: dict[int, int] = {}

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attributes

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self._rows

    def tuple_ids(self) -> list[int]:
        """All tuple ids currently stored (unordered snapshot copy)."""
        return list(self._ids)

    def iter_rows(self) -> Iterator[tuple[int, dict[str, float]]]:
        """Iterate ``(tuple_id, row)`` pairs; rows are live references."""
        for tuple_id in self._ids:
            yield tuple_id, self._rows[tuple_id]

    # ------------------------------------------------------------------
    # modification
    # ------------------------------------------------------------------

    def _coerce_row(self, values: Mapping[str, float]) -> dict[str, float]:
        unknown = set(values) - set(self._attributes)
        if unknown:
            raise StoreError(
                f"unknown attributes {sorted(unknown)}; schema is {self._attributes}"
            )
        missing = set(self._attributes) - set(values)
        if missing:
            raise StoreError(f"missing attributes {sorted(missing)} in row")
        return {name: float(values[name]) for name in self._attributes}

    def insert(self, tuple_id: int, values: Mapping[str, float]) -> None:
        """Insert a complete new row under ``tuple_id``."""
        if tuple_id in self._rows:
            raise StoreError(f"tuple {tuple_id} already exists")
        self._rows[tuple_id] = self._coerce_row(values)
        self._positions[tuple_id] = len(self._ids)
        self._ids.append(tuple_id)

    def update(self, tuple_id: int, values: Mapping[str, float]) -> None:
        """Overwrite a subset of attributes of an existing row."""
        row = self._rows.get(tuple_id)
        if row is None:
            raise StoreError(f"tuple {tuple_id} does not exist")
        unknown = set(values) - set(self._attributes)
        if unknown:
            raise StoreError(
                f"unknown attributes {sorted(unknown)}; schema is {self._attributes}"
            )
        for name, value in values.items():
            row[name] = float(value)

    def delete(self, tuple_id: int) -> None:
        """Remove a row in O(1) (swap-pop on the id list)."""
        position = self._positions.get(tuple_id)
        if position is None:
            raise StoreError(f"tuple {tuple_id} does not exist")
        last_id = self._ids[-1]
        self._ids[position] = last_id
        self._positions[last_id] = position
        self._ids.pop()
        del self._positions[tuple_id]
        del self._rows[tuple_id]

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------

    def get(self, tuple_id: int) -> dict[str, float]:
        """A copy of the row stored under ``tuple_id``."""
        row = self._rows.get(tuple_id)
        if row is None:
            raise StoreError(f"tuple {tuple_id} does not exist")
        return dict(row)

    def sample_uniform(self, rng: np.random.Generator) -> int:
        """Uniformly random tuple id — the local stage of two-stage sampling."""
        if not self._ids:
            raise StoreError("cannot sample from an empty store")
        return self._ids[int(rng.integers(len(self._ids)))]

    def column(self, attribute: str) -> np.ndarray:
        """All values of one attribute, ordered by the internal id list."""
        if attribute not in self._attributes:
            raise StoreError(
                f"unknown attribute {attribute!r}; schema is {self._attributes}"
            )
        return np.array(
            [self._rows[tuple_id][attribute] for tuple_id in self._ids], dtype=float
        )

    def columns(self) -> dict[str, np.ndarray]:
        """All attributes as parallel column arrays."""
        return {name: self.column(name) for name in self._attributes}
