"""Aggregate operations and their sample-based estimators.

The query model covers ``op in {AVG, COUNT, SUM}`` applied to an arithmetic
expression (Section II). All three reduce to estimating a population mean
``Y-bar`` of per-tuple values ``y_i = expression(u_i)``:

* ``AVG``   -> ``Y-bar`` directly;
* ``SUM``   -> ``N * Y-bar`` where ``N = |R|``;
* ``COUNT`` -> ``N * P`` where ``P`` is the fraction of tuples whose
  expression value is non-zero (the indicator mean). With the constant
  expression ``1`` this is exactly the relation size ``N``.

``N`` is a property of the database; in a live deployment it is itself
estimated (see :mod:`repro.sampling.size_estimation`), while experiments
may use the oracle value. The scaling also maps the user's absolute error
``epsilon`` on the aggregate down to the error the mean estimator must
achieve (``epsilon / N`` for SUM/COUNT).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.db.expression import Expression, Row
from repro.db.predicate import Predicate
from repro.db.relation import P2PDatabase
from repro.errors import QueryError


class AggregateOp(enum.Enum):
    """Aggregate operations supported by the query model."""

    AVG = "AVG"
    SUM = "SUM"
    COUNT = "COUNT"

    @classmethod
    def parse(cls, text: str) -> "AggregateOp":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            valid = ", ".join(op.value for op in cls)
            raise QueryError(f"unknown aggregate {text!r}; expected one of {valid}")


def tuple_values(op: AggregateOp, expression: Expression, rows: np.ndarray) -> np.ndarray:
    """Per-tuple values ``y_i`` whose mean the estimator targets.

    ``rows`` holds expression values; COUNT replaces them with the non-zero
    indicator so the mean becomes the counted fraction.
    """
    values = np.asarray(rows, dtype=float)
    if op is AggregateOp.COUNT:
        return (values != 0.0).astype(float)
    return values


def scale_factor(op: AggregateOp, population_size: int) -> float:
    """Multiplier from the mean of ``y_i`` to the aggregate value."""
    if op is AggregateOp.AVG:
        return 1.0
    if population_size < 0:
        raise QueryError(f"population size must be >= 0, got {population_size}")
    return float(population_size)


def estimate_from_mean(
    op: AggregateOp, mean_estimate: float, population_size: int
) -> float:
    """Aggregate estimate from a mean estimate (see module docstring)."""
    return mean_estimate * scale_factor(op, population_size)


def mean_error_budget(op: AggregateOp, epsilon: float, population_size: int) -> float:
    """Absolute error the *mean* estimator must meet for aggregate error ``epsilon``."""
    if epsilon < 0:
        raise QueryError(f"epsilon must be >= 0, got {epsilon}")
    scale = scale_factor(op, population_size)
    if scale == 0.0:
        # empty relation: any estimate of the (zero) aggregate is exact
        return float("inf")
    return epsilon / scale


def sample_contribution(
    op: AggregateOp,
    expression: Expression,
    predicate: Predicate | None,
    row: Row,
) -> tuple[float, float]:
    """Per-sample ``(y, indicator)`` pair for one tuple.

    ``indicator`` is 1.0 when the tuple qualifies under ``predicate``
    (always 1.0 without one). ``y`` is the masked contribution:

    * AVG — ``expr * indicator``; the subpopulation mean is the *ratio*
      ``E[y] / E[indicator]`` (see :func:`ratio_estimate` in
      :mod:`repro.core.estimators`), reducing to the plain mean when no
      predicate is present;
    * SUM — ``expr * indicator`` (``SUM = N * E[y]``);
    * COUNT — ``indicator * (expr != 0)`` (``COUNT = N * E[y]``).
    """
    satisfied = 1.0 if predicate is None or predicate.evaluate(row) else 0.0
    if op is AggregateOp.COUNT:
        value = 1.0 if expression.evaluate(row) != 0.0 else 0.0
        return value * satisfied, satisfied
    return expression.evaluate(row) * satisfied, satisfied


def exact_aggregate(
    database: P2PDatabase,
    op: AggregateOp,
    expression: Expression,
    predicate: Predicate | None = None,
) -> float:
    """Oracle aggregate over the full relation (used for error measurement)."""
    raw = database.exact_values(expression)
    if predicate is not None:
        columns = database.exact_columns(
            sorted(set(expression.attributes) | set(predicate.attributes))
        )
        mask = predicate.evaluate_columns(columns)
    else:
        mask = np.ones(raw.size, dtype=bool)
    values = tuple_values(op, expression, raw)
    if op is AggregateOp.AVG:
        if not mask.any():
            raise QueryError(
                "AVG is undefined: no tuple satisfies the predicate"
                if predicate is not None
                else "AVG over an empty relation is undefined"
            )
        return float(values[mask].mean())
    if values.size == 0:
        return 0.0
    masked = np.where(mask, values, 0.0)
    return estimate_from_mean(op, float(masked.mean()), database.n_tuples)
