"""Boolean selection predicates over relation attributes (WHERE clauses).

The paper's future work calls for "more complex aggregate queries with
multiple relations and arbitrary select-join predicates" (Section VIII);
this module implements the single-relation *selection* half:

    SELECT op(expression) FROM R WHERE predicate

Grammar (precedence: comparisons bind tighter than NOT, then AND, then
OR; keywords are case-insensitive)::

    predicate  := or_term
    or_term    := and_term ("OR" and_term)*
    and_term   := not_term ("AND" not_term)*
    not_term   := "NOT" not_term | comparison
    comparison := expr (("<"|"<="|">"|">="|"="|"=="|"!="|"<>") expr)
                | "(" predicate ")"

Comparison operands are full arithmetic expressions
(:class:`repro.db.expression.Expression`), so ``memory + storage > 4 AND
NOT (cpu < 0.5)`` parses as expected. ``(`` is ambiguous between a
parenthesized predicate and a parenthesized arithmetic operand; the
parser resolves it by attempting the predicate reading first and backing
off to the arithmetic reading (classic backtracking on a single token
class, bounded by the nesting depth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.db.expression import Expression, Row, _Parser, _Token, _tokenize
from repro.errors import ExpressionError

_COMPARISONS = {"<", "<=", ">", ">=", "=", "==", "!=", "<>"}
_KEYWORDS = {"AND", "OR", "NOT"}


class _PredicateNode:
    """Base class for boolean AST nodes."""

    def evaluate(self, row: Row) -> bool:
        raise NotImplementedError

    def evaluate_columns(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def attributes(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class _Comparison(_PredicateNode):
    op: str
    left: Expression
    right: Expression

    def evaluate(self, row: Row) -> bool:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if self.op in ("=", "=="):
            return left == right
        if self.op in ("!=", "<>"):
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        raise ExpressionError(f"unknown comparison {self.op!r}")

    def evaluate_columns(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        left = self.left.evaluate_columns(columns)
        right = self.right.evaluate_columns(columns)
        if self.op in ("=", "=="):
            return left == right
        if self.op in ("!=", "<>"):
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        return left >= right

    def attributes(self) -> set[str]:
        return set(self.left.attributes) | set(self.right.attributes)

    def __str__(self) -> str:
        return f"({self.left.text} {self.op} {self.right.text})"


@dataclass(frozen=True)
class _Logical(_PredicateNode):
    op: str  # "AND" | "OR"
    left: _PredicateNode
    right: _PredicateNode

    def evaluate(self, row: Row) -> bool:
        if self.op == "AND":
            return self.left.evaluate(row) and self.right.evaluate(row)
        return self.left.evaluate(row) or self.right.evaluate(row)

    def evaluate_columns(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        left = self.left.evaluate_columns(columns)
        right = self.right.evaluate_columns(columns)
        return left & right if self.op == "AND" else left | right

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class _Not(_PredicateNode):
    operand: _PredicateNode

    def evaluate(self, row: Row) -> bool:
        return not self.operand.evaluate(row)

    def evaluate_columns(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        return ~self.operand.evaluate_columns(columns)

    def attributes(self) -> set[str]:
        return self.operand.attributes()

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


class _PredicateParser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    def parse(self) -> _PredicateNode:
        node = self._or_term()
        token = self._peek()
        if token.kind != "end":
            raise ExpressionError(
                f"unexpected token {token.text!r} at position {token.position} "
                f"in predicate {self._text!r}"
            )
        return node

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _is_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "ident" and token.text.upper() == word

    def _or_term(self) -> _PredicateNode:
        node = self._and_term()
        while self._is_keyword("OR"):
            self._index += 1
            node = _Logical("OR", node, self._and_term())
        return node

    def _and_term(self) -> _PredicateNode:
        node = self._not_term()
        while self._is_keyword("AND"):
            self._index += 1
            node = _Logical("AND", node, self._not_term())
        return node

    def _not_term(self) -> _PredicateNode:
        if self._is_keyword("NOT"):
            self._index += 1
            return _Not(self._not_term())
        return self._comparison()

    def _comparison(self) -> _PredicateNode:
        token = self._peek()
        if token.kind == "op" and token.text == "(":
            # ambiguous: parenthesized predicate or arithmetic operand.
            # Try the predicate reading first; back off on failure.
            saved = self._index
            self._index += 1
            try:
                node = self._or_term()
                closing = self._peek()
                if closing.kind == "op" and closing.text == ")":
                    self._index += 1
                    return node
            except ExpressionError:
                pass
            self._index = saved  # arithmetic reading
        left = self._arithmetic()
        operator = self._peek()
        if operator.kind != "op" or operator.text not in _COMPARISONS:
            raise ExpressionError(
                f"expected a comparison operator at position "
                f"{operator.position} in predicate {self._text!r}, got "
                f"{operator.text!r}"
            )
        self._index += 1
        right = self._arithmetic()
        return _Comparison(operator.text, left, right)

    def _arithmetic(self) -> Expression:
        parser = _Parser(self._text, self._tokens)
        parser._index = self._index
        node = parser.parse_expression()
        start = self._tokens[self._index].position
        end = self._tokens[parser.index].position
        self._index = parser.index
        return Expression._from_node(node, self._text[start:end].strip())


class Predicate:
    """A parsed boolean predicate over relation attributes.

    >>> p = Predicate("memory + storage > 4 AND NOT cpu < 0.5")
    >>> p.evaluate({"memory": 3, "storage": 2, "cpu": 0.9})
    True
    >>> sorted(p.attributes)
    ['cpu', 'memory', 'storage']
    """

    def __init__(self, text: str) -> None:
        if not text or not text.strip():
            raise ExpressionError("empty predicate")
        self._text = text
        self._root = _PredicateParser(text).parse()
        self._attributes = frozenset(self._root.attributes())

    @property
    def text(self) -> str:
        return self._text

    @property
    def attributes(self) -> frozenset[str]:
        return self._attributes

    def evaluate(self, row: Row) -> bool:
        """Truth value of the predicate for one row."""
        return bool(self._root.evaluate(row))

    def evaluate_columns(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorized evaluation: a boolean array over the rows."""
        result = np.asarray(self._root.evaluate_columns(columns))
        if result.ndim == 0:
            length = len(next(iter(columns.values()))) if columns else 1
            result = np.full(length, bool(result))
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self._text == other._text

    def __hash__(self) -> int:
        return hash(self._text)

    def __repr__(self) -> str:
        return f"Predicate({self._text!r})"
