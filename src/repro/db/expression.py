"""Arithmetic expressions over relation attributes.

Queries have the shape ``SELECT op(expression) FROM R`` where ``expression``
is an arithmetic expression involving the attributes of ``R`` (Section II),
e.g. ``SUM(memory + storage)``. This module implements that expression
language: a tokenizer, a recursive-descent parser producing a small AST,
and evaluation against a single row (mapping of attribute name to value) or
vectorized against columns of numpy arrays.

Grammar (standard precedence, ``**`` binds tightest and right-associative)::

    expr   := term (("+" | "-") term)*
    term   := unary (("*" | "/") unary)*
    unary  := ("+" | "-") unary | power
    power  := atom ("**" unary)?
    atom   := NUMBER | IDENT | "(" expr ")"

The parser is intentionally small and explicit — no ``eval``, no operator
tables hidden behind metaprogramming — per the project style guide.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Mapping, Union

import numpy as np

from repro.errors import ExpressionError

Number = Union[int, float]
Row = Mapping[str, Number]

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<number>\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?"
    r"|(?P<ident>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<op>\*\*|<=|>=|==|!=|<>|[-+*/()<>=]))"
)


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "ident" | "op" | "end"
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].lstrip()
            if not remainder:
                break
            raise ExpressionError(
                f"unexpected character {remainder[0]!r} at position {position} "
                f"in expression {text!r}"
            )
        if match.lastgroup == "number" or (
            match.group("number") is not None
        ):
            # the exponent suffix is part of the overall match, not the group
            tokens.append(_Token("number", match.group(0).strip(), match.start()))
        elif match.group("ident") is not None:
            tokens.append(_Token("ident", match.group("ident"), match.start()))
        else:
            tokens.append(_Token("op", match.group("op"), match.start()))
        position = match.end()
    tokens.append(_Token("end", "", len(text)))
    return tokens


# ----------------------------------------------------------------------
# AST nodes
# ----------------------------------------------------------------------


class _Node:
    """Base AST node; subclasses implement ``evaluate`` and ``attributes``."""

    def evaluate(self, row: Row) -> float:
        raise NotImplementedError

    def attributes(self) -> set[str]:
        raise NotImplementedError


@dataclass(frozen=True)
class _Literal(_Node):
    value: float

    def evaluate(self, row: Row) -> float:
        return self.value

    def attributes(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class _Attribute(_Node):
    name: str

    def evaluate(self, row: Row) -> float:
        try:
            return float(row[self.name])
        except KeyError:
            raise ExpressionError(
                f"row has no attribute {self.name!r}; available: {sorted(row)}"
            ) from None

    def attributes(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class _Unary(_Node):
    op: str
    operand: _Node

    def evaluate(self, row: Row) -> float:
        value = self.operand.evaluate(row)
        return -value if self.op == "-" else value

    def attributes(self) -> set[str]:
        return self.operand.attributes()

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class _Binary(_Node):
    op: str
    left: _Node
    right: _Node

    def evaluate(self, row: Row) -> float:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if self.op == "/":
            if right == 0:
                raise ExpressionError(f"division by zero in {self}")
            return left / right
        if self.op == "**":
            try:
                result = left**right
            except (OverflowError, ValueError) as exc:
                raise ExpressionError(f"invalid power in {self}: {exc}") from exc
            if isinstance(result, complex):
                raise ExpressionError(f"complex result in {self}")
            return result
        raise ExpressionError(f"unknown operator {self.op!r}")

    def attributes(self) -> set[str]:
        return self.left.attributes() | self.right.attributes()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class _Parser:
    """Recursive-descent arithmetic parser over a token stream.

    The predicate parser (:mod:`repro.db.predicate`) reuses this class for
    comparison operands by constructing it with pre-built tokens and
    calling :meth:`parse_expression`, which stops (without consuming) at
    the first token the arithmetic grammar cannot use.
    """

    def __init__(self, text: str, tokens: list[_Token] | None = None) -> None:
        self._text = text
        self._tokens = tokens if tokens is not None else _tokenize(text)
        self._index = 0

    @property
    def index(self) -> int:
        return self._index

    def parse(self) -> _Node:
        node = self._expr()
        token = self._peek()
        if token.kind != "end":
            raise ExpressionError(
                f"unexpected token {token.text!r} at position {token.position} "
                f"in expression {self._text!r}"
            )
        return node

    def parse_expression(self) -> _Node:
        """Parse one arithmetic expression, leaving trailing tokens."""
        return self._expr()

    def _peek(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect_op(self, text: str) -> None:
        token = self._advance()
        if token.kind != "op" or token.text != text:
            raise ExpressionError(
                f"expected {text!r} at position {token.position} "
                f"in expression {self._text!r}, got {token.text!r}"
            )

    def _expr(self) -> _Node:
        node = self._term()
        while self._peek().kind == "op" and self._peek().text in ("+", "-"):
            op = self._advance().text
            node = _Binary(op, node, self._term())
        return node

    def _term(self) -> _Node:
        node = self._unary()
        while self._peek().kind == "op" and self._peek().text in ("*", "/"):
            op = self._advance().text
            node = _Binary(op, node, self._unary())
        return node

    def _unary(self) -> _Node:
        token = self._peek()
        if token.kind == "op" and token.text in ("+", "-"):
            self._advance()
            return _Unary(token.text, self._unary())
        return self._power()

    def _power(self) -> _Node:
        base = self._atom()
        token = self._peek()
        if token.kind == "op" and token.text == "**":
            self._advance()
            return _Binary("**", base, self._unary())
        return base

    def _atom(self) -> _Node:
        token = self._advance()
        if token.kind == "number":
            return _Literal(float(token.text))
        if token.kind == "ident":
            return _Attribute(token.text)
        if token.kind == "op" and token.text == "(":
            node = self._expr()
            self._expect_op(")")
            return node
        raise ExpressionError(
            f"unexpected token {token.text!r} at position {token.position} "
            f"in expression {self._text!r}"
        )


class Expression:
    """A parsed arithmetic expression over relation attributes.

    Instances are immutable and hashable on their source text. Use
    :meth:`evaluate` for one row or :meth:`evaluate_columns` for vectorized
    evaluation over numpy column arrays.

    Examples
    --------
    >>> expr = Expression("memory + storage")
    >>> expr.evaluate({"memory": 2.0, "storage": 3.0})
    5.0
    >>> sorted(expr.attributes)
    ['memory', 'storage']
    """

    def __init__(self, text: str) -> None:
        if not text or not text.strip():
            raise ExpressionError("empty expression")
        self._text = text
        self._root = _Parser(text).parse()
        self._attributes = frozenset(self._root.attributes())

    @classmethod
    def _from_node(cls, node: _Node, text: str) -> "Expression":
        """Wrap an already-parsed AST (used by the predicate parser)."""
        expression = cls.__new__(cls)
        expression._text = text
        expression._root = node
        expression._attributes = frozenset(node.attributes())
        return expression

    @property
    def text(self) -> str:
        """The original expression source."""
        return self._text

    @property
    def attributes(self) -> frozenset[str]:
        """Attribute names referenced by the expression."""
        return self._attributes

    def evaluate(self, row: Row) -> float:
        """Evaluate against one row (attribute name -> value)."""
        value = self._root.evaluate(row)
        if isinstance(value, float) and (math.isnan(value) or math.isinf(value)):
            raise ExpressionError(
                f"expression {self._text!r} produced non-finite value {value}"
            )
        return float(value)

    def evaluate_columns(self, columns: Mapping[str, np.ndarray]) -> np.ndarray:
        """Vectorized evaluation over equal-length column arrays."""
        missing = self._attributes - set(columns)
        if missing:
            raise ExpressionError(
                f"columns missing attributes {sorted(missing)} for {self._text!r}"
            )
        result = np.asarray(
            self._evaluate_node_vectorized(self._root, columns), dtype=float
        )
        if result.ndim == 0:
            # constant expression: broadcast to the column length
            length = len(next(iter(columns.values()))) if columns else 1
            result = np.full(length, float(result))
        return result

    def _evaluate_node_vectorized(
        self, node: _Node, columns: Mapping[str, np.ndarray]
    ) -> np.ndarray | float:
        if isinstance(node, _Literal):
            return node.value
        if isinstance(node, _Attribute):
            return np.asarray(columns[node.name], dtype=float)
        if isinstance(node, _Unary):
            operand = self._evaluate_node_vectorized(node.operand, columns)
            return -operand if node.op == "-" else operand
        if isinstance(node, _Binary):
            left = self._evaluate_node_vectorized(node.left, columns)
            right = self._evaluate_node_vectorized(node.right, columns)
            if node.op == "+":
                return left + right
            if node.op == "-":
                return left - right
            if node.op == "*":
                return left * right
            if node.op == "/":
                with np.errstate(divide="raise", invalid="raise"):
                    try:
                        return left / right
                    except FloatingPointError:
                        raise ExpressionError(
                            f"division by zero in {self._text!r}"
                        ) from None
            if node.op == "**":
                with np.errstate(invalid="raise", over="raise"):
                    try:
                        return left**right
                    except FloatingPointError:
                        raise ExpressionError(
                            f"invalid power in {self._text!r}"
                        ) from None
        raise ExpressionError(f"unknown node type {type(node).__name__}")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Expression):
            return NotImplemented
        return self._text == other._text

    def __hash__(self) -> int:
        return hash(self._text)

    def __repr__(self) -> str:
        return f"Expression({self._text!r})"
