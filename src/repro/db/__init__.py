"""Relational substrate for the peer-to-peer database.

The paper assumes a single relation ``R`` horizontally partitioned over the
overlay nodes, each node holding a disjoint multiset of tuples whose values
change autonomously (Section II). This package provides:

* :mod:`repro.db.expression` — the arithmetic ``expression`` language that
  appears inside ``op(expression)`` aggregate queries;
* :mod:`repro.db.store` — a per-node tuple store with O(1) insert, update,
  delete and uniform local sampling;
* :mod:`repro.db.relation` — the distributed relation: placement of tuples
  on nodes, churn integration, and exact (oracle) evaluation;
* :mod:`repro.db.aggregates` — AVG/SUM/COUNT semantics shared by the exact
  evaluator and the sample-based estimators.
"""

from repro.db.aggregates import (
    AggregateOp,
    estimate_from_mean,
    exact_aggregate,
    sample_contribution,
)
from repro.db.expression import Expression
from repro.db.predicate import Predicate
from repro.db.relation import P2PDatabase, Schema
from repro.db.store import LocalStore

__all__ = [
    "AggregateOp",
    "Expression",
    "LocalStore",
    "P2PDatabase",
    "Predicate",
    "Schema",
    "estimate_from_mean",
    "exact_aggregate",
    "sample_contribution",
]
