"""The distributed relation: placement, churn, and oracle evaluation.

``R`` is a single relation horizontally partitioned across overlay nodes
(Section II). :class:`P2PDatabase` owns one :class:`~repro.db.store.LocalStore`
per live node, a global tuple-location index, and global id allocation. It
is the ground truth the simulator maintains; query engines never read it
wholesale — they interact only through the sampling operator (plus the
per-tuple ``read`` used to re-evaluate retained samples) — but experiments
use :meth:`exact_values` as the oracle for error measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.db.expression import Expression
from repro.db.predicate import Predicate
from repro.db.store import LocalStore
from repro.errors import StoreError
from repro.network.churn import ChurnEvent


@dataclass(frozen=True)
class Schema:
    """Ordered attribute names of the relation."""

    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise StoreError("schema needs at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise StoreError(f"duplicate attribute names in {self.attributes}")

    def validate_expression(self, expression: Expression) -> None:
        """Raise when ``expression`` references attributes not in the schema."""
        unknown = expression.attributes - set(self.attributes)
        if unknown:
            raise StoreError(
                f"expression {expression.text!r} references unknown attributes "
                f"{sorted(unknown)}; schema is {self.attributes}"
            )

    def validate_predicate(self, predicate: Predicate) -> None:
        """Raise when ``predicate`` references attributes not in the schema."""
        unknown = predicate.attributes - set(self.attributes)
        if unknown:
            raise StoreError(
                f"predicate {predicate.text!r} references unknown attributes "
                f"{sorted(unknown)}; schema is {self.attributes}"
            )


class P2PDatabase:
    """Horizontally partitioned relation over overlay nodes.

    Parameters
    ----------
    schema:
        Relation schema shared by every fragment.
    nodes:
        Initial node ids; each gets an empty local store.
    """

    def __init__(self, schema: Schema, nodes: Iterable[int] = ()) -> None:
        self._schema = schema
        self._stores: dict[int, LocalStore] = {}
        self._location: dict[int, int] = {}
        self._next_tuple_id = 0
        for node in nodes:
            self.add_node(node)

    @property
    def schema(self) -> Schema:
        return self._schema

    # ------------------------------------------------------------------
    # node membership
    # ------------------------------------------------------------------

    def add_node(self, node: int) -> None:
        """Register a (new) node with an empty fragment."""
        if node in self._stores:
            raise StoreError(f"node {node} already has a store")
        self._stores[node] = LocalStore(self._schema.attributes)

    def remove_node(self, node: int) -> list[int]:
        """Drop a node and its entire fragment; returns the lost tuple ids.

        Matches the paper's model: a departing node removes its content, as
        if deleting those tuples.
        """
        store = self._stores.get(node)
        if store is None:
            raise StoreError(f"node {node} has no store")
        lost = store.tuple_ids()
        for tuple_id in lost:
            del self._location[tuple_id]
        del self._stores[node]
        return lost

    def handle_churn(self, event: ChurnEvent) -> list[int]:
        """Apply an overlay churn event; returns tuple ids lost to departures."""
        lost: list[int] = []
        for node in event.left:
            lost.extend(self.remove_node(node))
        for node in event.joined:
            self.add_node(node)
        return lost

    def nodes(self) -> list[int]:
        return sorted(self._stores)

    def store(self, node: int) -> LocalStore:
        store = self._stores.get(node)
        if store is None:
            raise StoreError(f"node {node} has no store")
        return store

    def content_sizes(self) -> dict[int, int]:
        """``m_v`` per node — the weight function for uniform tuple sampling."""
        return {node: len(store) for node, store in self._stores.items()}

    # ------------------------------------------------------------------
    # tuple operations
    # ------------------------------------------------------------------

    @property
    def n_tuples(self) -> int:
        """Total relation size ``N`` across all fragments."""
        return len(self._location)

    def insert(self, node: int, values: Mapping[str, float]) -> int:
        """Insert a row at ``node``; returns the new global tuple id."""
        store = self.store(node)
        tuple_id = self._next_tuple_id
        self._next_tuple_id += 1
        store.insert(tuple_id, values)
        self._location[tuple_id] = node
        return tuple_id

    def update(self, tuple_id: int, values: Mapping[str, float]) -> None:
        """Update attributes of an existing tuple wherever it lives."""
        node = self._location.get(tuple_id)
        if node is None:
            raise StoreError(f"tuple {tuple_id} does not exist")
        self._stores[node].update(tuple_id, values)

    def delete(self, tuple_id: int) -> None:
        node = self._location.get(tuple_id)
        if node is None:
            raise StoreError(f"tuple {tuple_id} does not exist")
        self._stores[node].delete(tuple_id)
        del self._location[tuple_id]

    def locate(self, tuple_id: int) -> int | None:
        """Node currently hosting ``tuple_id``, or None if it was deleted."""
        return self._location.get(tuple_id)

    def read(self, tuple_id: int) -> dict[str, float]:
        """Current attribute values of a tuple (copy)."""
        node = self._location.get(tuple_id)
        if node is None:
            raise StoreError(f"tuple {tuple_id} does not exist")
        return self._stores[node].get(tuple_id)

    def __contains__(self, tuple_id: int) -> bool:
        return tuple_id in self._location

    def iter_tuples(self) -> Iterator[tuple[int, int, dict[str, float]]]:
        """Iterate ``(tuple_id, node, row)`` across the whole relation."""
        for node in sorted(self._stores):
            for tuple_id, row in self._stores[node].iter_rows():
                yield tuple_id, node, row

    # ------------------------------------------------------------------
    # oracle evaluation (for experiments / error measurement)
    # ------------------------------------------------------------------

    def exact_values(self, expression: Expression) -> np.ndarray:
        """``expression`` evaluated over every tuple (oracle access)."""
        self._schema.validate_expression(expression)
        parts = []
        for node in sorted(self._stores):
            store = self._stores[node]
            if len(store):
                parts.append(expression.evaluate_columns(store.columns()))
        if not parts:
            return np.empty(0, dtype=float)
        return np.concatenate(parts)

    def exact_columns(self, attributes: Iterable[str]) -> dict[str, np.ndarray]:
        """Whole-relation column arrays, row-aligned with :meth:`exact_values`.

        Both iterate fragments in sorted-node order, so row ``i`` of the
        returned columns is the tuple behind ``exact_values(...)[i]``.
        """
        names = list(attributes)
        unknown = set(names) - set(self._schema.attributes)
        if unknown:
            raise StoreError(
                f"unknown attributes {sorted(unknown)}; "
                f"schema is {self._schema.attributes}"
            )
        parts: dict[str, list[np.ndarray]] = {name: [] for name in names}
        for node in sorted(self._stores):
            store = self._stores[node]
            if len(store):
                for name in names:
                    parts[name].append(store.column(name))
        return {
            name: (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=float)
            )
            for name, chunks in parts.items()
        }
