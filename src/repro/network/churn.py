"""Session-based churn for the overlay.

The MEMORY workload (SETI@HOME-like) exhibits frequent node join/leave
(Section VI-A), while the TEMPERATURE network is "almost stable". The churn
process here is memoryless per step: each live, unprotected node departs
with probability ``leave_probability`` and a Poisson number of new nodes
(mean ``join_rate``) arrive and bootstrap-link to ``n_links`` random peers.

The paper's sampling analysis assumes the overlay is effectively static
*within* one sampling occasion (Section II); the simulation honors that by
applying churn only between discrete time steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.graph import OverlayGraph


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of the per-step churn process.

    ``leave_probability`` is the chance each unprotected node departs in a
    step; ``join_rate`` is the expected number of arrivals per step;
    ``n_links`` is how many bootstrap links each arrival opens; with
    ``rewire=True`` departures stitch their neighbors together so the
    overlay stays connected.
    """

    leave_probability: float = 0.0
    join_rate: float = 0.0
    n_links: int = 2
    rewire: bool = True
    min_nodes: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.leave_probability <= 1.0:
            raise ValueError(
                f"leave_probability must be in [0, 1], got {self.leave_probability}"
            )
        if self.join_rate < 0:
            raise ValueError(f"join_rate must be >= 0, got {self.join_rate}")
        if self.n_links < 1:
            raise ValueError(f"n_links must be >= 1, got {self.n_links}")
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")


@dataclass
class ChurnEvent:
    """Outcome of one churn step: ids that joined and ids that left."""

    joined: list[int] = field(default_factory=list)
    left: list[int] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.joined and not self.left


class ChurnProcess:
    """Applies :class:`ChurnConfig` dynamics to an :class:`OverlayGraph`.

    ``protected`` nodes (typically the querying node) never leave. The
    process refuses to shrink the overlay below ``config.min_nodes``.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        config: ChurnConfig,
        rng: np.random.Generator,
        protected: set[int] | None = None,
    ) -> None:
        self._graph = graph
        self._config = config
        self._rng = rng
        self._protected = set(protected or ())

    @property
    def protected(self) -> set[int]:
        return set(self._protected)

    def protect(self, node: int) -> None:
        """Exempt ``node`` from departures."""
        self._protected.add(node)

    def step(self) -> ChurnEvent:
        """Run one churn round and return what changed."""
        event = ChurnEvent()
        config = self._config
        if config.leave_probability > 0.0:
            candidates = [
                node for node in self._graph.nodes() if node not in self._protected
            ]
            if candidates:
                draws = self._rng.random(len(candidates))
                leavers = [
                    node
                    for node, draw in zip(candidates, draws)
                    if draw < config.leave_probability
                ]
                headroom = len(self._graph) - config.min_nodes
                if 0 <= headroom < len(leavers):
                    # the min_nodes cap truncates the leaver list; shuffle
                    # (seeded) first so survival is not biased toward the
                    # high node ids that sort to the back of the candidates
                    order = self._rng.permutation(len(leavers))
                    leavers = [leavers[int(i)] for i in order]
                for node in leavers[: max(0, headroom)]:
                    self._graph.leave(node, rewire=config.rewire)
                    event.left.append(node)
        if config.join_rate > 0.0:
            arrivals = int(self._rng.poisson(config.join_rate))
            for _ in range(arrivals):
                node = self._graph.join(n_links=config.n_links, rng=self._rng)
                event.joined.append(node)
        return event
