"""Overlay topology generators.

The paper simulates the weather-forecast network with a *mesh* topology and
the peer-to-peer computing network with a *power-law* topology (Section
VI-A), and its mixing-time result (Theorem 4) is stated for random power-law
graphs with exponent ``2 < alpha < 3``. These generators return edge lists
over node ids ``0..n-1``; :class:`repro.network.graph.OverlayGraph` consumes
them.

Every generator guarantees a *connected* graph (required for irreducibility
of the sampling walk, Theorem 1) by joining stray components with bridge
edges when necessary.
"""

from __future__ import annotations

import math
from typing import Iterable

import networkx as nx
import numpy as np

from repro.errors import TopologyError

Edge = tuple[int, int]


def _as_seed(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def _connect_components(graph: nx.Graph, rng: np.random.Generator) -> None:
    """Join the components of ``graph`` in place with random bridge edges."""
    components = [list(c) for c in nx.connected_components(graph)]
    if len(components) <= 1:
        return
    anchor = components[0]
    for component in components[1:]:
        u = anchor[int(rng.integers(len(anchor)))]
        v = component[int(rng.integers(len(component)))]
        graph.add_edge(u, v)
        anchor.extend(component)


def _edges(graph: nx.Graph) -> list[Edge]:
    """Relabel to contiguous ids and return a sorted edge list."""
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes))}
    return sorted(
        (min(mapping[u], mapping[v]), max(mapping[u], mapping[v]))
        for u, v in graph.edges
    )


def mesh_topology(n: int) -> list[Edge]:
    """Two-dimensional grid mesh with ``n`` nodes.

    Used to model the (geographically organized) weather-forecast network.
    The grid is the most nearly square ``rows x cols`` factorization of a
    size >= n, truncated to exactly ``n`` nodes row by row.
    """
    if n < 1:
        raise TopologyError(f"mesh needs at least 1 node, got {n}")
    cols = max(1, int(math.ceil(math.sqrt(n))))
    rows = int(math.ceil(n / cols))
    edges: list[Edge] = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if node >= n:
                break
            right = node + 1
            if c + 1 < cols and right < n:
                edges.append((node, right))
            down = node + cols
            if down < n:
                edges.append((node, down))
    if n > 1 and not edges:
        raise TopologyError(f"degenerate mesh for n={n}")
    return edges


def augmented_mesh_topology(
    n: int,
    long_link_fraction: float = 0.2,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """2-D mesh plus ``long_link_fraction * n`` random long-range chords.

    A plain grid's random walk relaxes in Theta(N) steps — far slower than
    the tens-of-messages-per-sample cost the paper measures on its
    530-node weather "mesh". Weather-station overlays are grids *plus*
    regional uplinks; a small fraction of random chords restores the
    expander-like eigengap that makes the measured costs reproducible
    (0.2 gives ~65 messages/sample at N=530, the paper's figure).
    """
    if long_link_fraction < 0:
        raise TopologyError(
            f"long_link_fraction must be >= 0, got {long_link_fraction}"
        )
    generator = _as_seed(rng)
    edges = set(mesh_topology(n))
    extra = int(long_link_fraction * n)
    attempts = 0
    while extra > 0 and attempts < 100 * n:
        u = int(generator.integers(n))
        v = int(generator.integers(n))
        attempts += 1
        if u == v:
            continue
        edge = (min(u, v), max(u, v))
        if edge in edges:
            continue
        edges.add(edge)
        extra -= 1
    return sorted(edges)


def power_law_topology(
    n: int,
    alpha: float = 2.5,
    min_degree: int = 2,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Random graph with power-law degree distribution ``p_k ~ k^-alpha``.

    Degrees are drawn from a discrete power law truncated to
    ``[min_degree, sqrt(n)]`` and realized with a configuration model; self
    loops and parallel edges are discarded and the result is re-connected if
    needed. Theorem 4 assumes ``2 < alpha < 3``; other exponents are allowed
    for experimentation.
    """
    if n < 3:
        raise TopologyError(f"power-law graph needs at least 3 nodes, got {n}")
    if alpha <= 1.0:
        raise TopologyError(f"power-law exponent must exceed 1, got {alpha}")
    generator = _as_seed(rng)
    max_degree = max(min_degree + 1, int(math.sqrt(n)))
    supports = np.arange(min_degree, max_degree + 1, dtype=float)
    weights = supports**-alpha
    weights /= weights.sum()
    degrees = generator.choice(
        supports.astype(int), size=n, p=weights
    ).tolist()
    if sum(degrees) % 2:
        degrees[0] += 1
    multigraph = nx.configuration_model(degrees, seed=int(generator.integers(2**31)))
    graph = nx.Graph(multigraph)
    graph.remove_edges_from(nx.selfloop_edges(graph))
    graph.add_nodes_from(range(n))
    _connect_components(graph, generator)
    return _edges(graph)


def random_topology(
    n: int,
    mean_degree: float = 4.0,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Erdos-Renyi random graph with expected degree ``mean_degree``."""
    if n < 2:
        raise TopologyError(f"random graph needs at least 2 nodes, got {n}")
    generator = _as_seed(rng)
    probability = min(1.0, mean_degree / max(1, n - 1))
    graph = nx.gnp_random_graph(n, probability, seed=int(generator.integers(2**31)))
    _connect_components(graph, generator)
    return _edges(graph)


def small_world_topology(
    n: int,
    k: int = 4,
    rewire_probability: float = 0.1,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Watts-Strogatz small-world graph (ring lattice with rewiring)."""
    if n <= k:
        raise TopologyError(f"small-world graph needs n > k, got n={n}, k={k}")
    generator = _as_seed(rng)
    graph = nx.connected_watts_strogatz_graph(
        n, k, rewire_probability, seed=int(generator.integers(2**31))
    )
    return _edges(graph)


def random_regular_topology(
    n: int,
    degree: int = 4,
    rng: np.random.Generator | int | None = None,
) -> list[Edge]:
    """Random ``degree``-regular graph (useful for uniform-walk baselines)."""
    if n <= degree or (n * degree) % 2:
        raise TopologyError(
            f"random regular graph needs n > degree and n*degree even, "
            f"got n={n}, degree={degree}"
        )
    generator = _as_seed(rng)
    graph = nx.random_regular_graph(degree, n, seed=int(generator.integers(2**31)))
    _connect_components(graph, generator)
    return _edges(graph)


def ring_topology(n: int) -> list[Edge]:
    """Simple cycle over ``n`` nodes (worst-case mixing for tests)."""
    if n < 3:
        raise TopologyError(f"ring needs at least 3 nodes, got {n}")
    return [(i, (i + 1) % n) for i in range(n - 1)] + [(0, n - 1)]


def line_topology(n: int) -> list[Edge]:
    """Path graph over ``n`` nodes."""
    if n < 2:
        raise TopologyError(f"line needs at least 2 nodes, got {n}")
    return [(i, i + 1) for i in range(n - 1)]


def degree_sequence(edges: Iterable[Edge], n: int) -> np.ndarray:
    """Node degrees implied by ``edges`` over ``n`` nodes."""
    degrees = np.zeros(n, dtype=np.int64)
    for u, v in edges:
        degrees[u] += 1
        degrees[v] += 1
    return degrees
