"""Unstructured peer-to-peer overlay substrate.

The paper models the overlay as an undirected graph :math:`G(V, E)` with
arbitrary topology whose membership changes over time (Section II). This
package provides:

* :mod:`repro.network.topology` — generators for the topology families used
  in the evaluation (mesh for the weather network, power-law for the
  SETI@HOME-like network) plus extras for testing.
* :mod:`repro.network.graph` — a mutable overlay graph supporting joins,
  leaves and rewiring while keeping the graph connected.
* :mod:`repro.network.churn` — session-based churn processes.
* :mod:`repro.network.faults` — the failure model: seeded message loss,
  crashes, link failures and latency jitter, plus the fault audit log.
* :mod:`repro.network.partitions` — correlated failures: scheduled overlay
  partitions and flapping links, with overlay repair on heal.
* :mod:`repro.network.health` — origin-side neighbor health: per-link
  circuit breakers and partition suspicion from correlated walk failures.
* :mod:`repro.network.messaging` — hop-level message accounting, the cost
  unit of every figure in the paper.
"""

from repro.network.churn import ChurnConfig, ChurnProcess
from repro.network.faults import (
    CrashProcess,
    FaultConfig,
    FaultEvent,
    FaultLog,
    FaultPlan,
)
from repro.network.graph import OverlayGraph
from repro.network.health import CircuitBreaker, HealthConfig, HealthMonitor
from repro.network.messaging import MessageLedger
from repro.network.partitions import (
    PartitionEpisode,
    PartitionPlan,
    PartitionSchedule,
)
from repro.network.topology import (
    augmented_mesh_topology,
    line_topology,
    mesh_topology,
    power_law_topology,
    random_regular_topology,
    random_topology,
    ring_topology,
    small_world_topology,
)

__all__ = [
    "ChurnConfig",
    "ChurnProcess",
    "CircuitBreaker",
    "CrashProcess",
    "FaultConfig",
    "FaultEvent",
    "FaultLog",
    "FaultPlan",
    "HealthConfig",
    "HealthMonitor",
    "MessageLedger",
    "OverlayGraph",
    "PartitionEpisode",
    "PartitionPlan",
    "PartitionSchedule",
    "augmented_mesh_topology",
    "line_topology",
    "mesh_topology",
    "power_law_topology",
    "random_regular_topology",
    "random_topology",
    "ring_topology",
    "small_world_topology",
]
