"""Hop-level message accounting.

Every figure in the paper's evaluation is denominated either in *samples*
or in *messages sent from node to node* (Section VI-B3). The cost model is:

* one random-walk step = one message (the sampling agent is forwarded over
  one overlay link);
* returning a sampled node/tuple to the originator = the hop distance from
  the sampled node to the originator;
* pushing a tuple value to the querying node (push-based baselines) = the
  hop distance from the owning node to the querying node;
* local computation is free.

:class:`MessageLedger` tallies messages by category so experiments can
report both totals and breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MessageLedger:
    """Mutable counter set for overlay traffic.

    Categories
    ----------
    walk_steps:
        Sampling-agent forwards (Metropolis walk transitions, including
        rejected proposals, which still require the one-hop weight probe;
        lazy self-loops are free because no message leaves the node).
    sample_returns:
        Messages spent returning a sample to the originating node.
    pushes:
        Tuple values pushed to the querying node by push-based baselines.
    retries:
        All traffic (walk forwards and return hops) of retried walk
        attempts under the failure model. Kept out of ``walk_steps`` /
        ``sample_returns`` so fault-tolerance overhead is visible and
        first-attempt cost figures stay comparable with the fault-free
        experiments.
    control:
        Everything else (filter reallocations, query dissemination, ...).
    """

    walk_steps: int = 0
    sample_returns: int = 0
    pushes: int = 0
    retries: int = 0
    control: int = 0
    _by_label: dict[str, int] = field(default_factory=dict)

    def record_walk_steps(self, count: int) -> None:
        self._check(count)
        self.walk_steps += count

    def record_sample_return(self, hops: int) -> None:
        self._check(hops)
        self.sample_returns += hops

    def record_push(self, hops: int) -> None:
        self._check(hops)
        self.pushes += hops

    def record_retry(self, count: int) -> None:
        self._check(count)
        self.retries += count

    def record_control(self, count: int, label: str = "control") -> None:
        self._check(count)
        self.control += count
        self._by_label[label] = self._by_label.get(label, 0) + count

    @property
    def total(self) -> int:
        """All messages across categories."""
        return (
            self.walk_steps
            + self.sample_returns
            + self.pushes
            + self.retries
            + self.control
        )

    def breakdown(self) -> dict[str, int]:
        """Per-category message counts (labels folded into ``control``)."""
        result = {
            "walk_steps": self.walk_steps,
            "sample_returns": self.sample_returns,
            "pushes": self.pushes,
            "retries": self.retries,
            "control": self.control,
        }
        result.update({f"control:{k}": v for k, v in self._by_label.items()})
        return result

    def merge(self, other: "MessageLedger") -> None:
        """Fold ``other``'s counts into this ledger."""
        self.walk_steps += other.walk_steps
        self.sample_returns += other.sample_returns
        self.pushes += other.pushes
        self.retries += other.retries
        self.control += other.control
        for label, count in other._by_label.items():
            self._by_label[label] = self._by_label.get(label, 0) + count

    def reset(self) -> None:
        self.walk_steps = 0
        self.sample_returns = 0
        self.pushes = 0
        self.retries = 0
        self.control = 0
        self._by_label.clear()

    @staticmethod
    def _check(count: int) -> None:
        if count < 0:
            raise ValueError(f"message counts must be non-negative, got {count}")
