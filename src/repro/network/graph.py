"""Mutable unstructured overlay graph.

:class:`OverlayGraph` is the concrete :math:`G(V, E)` of Section II: an
undirected graph with arbitrary topology whose node set changes as peers
join and leave. It is optimized for the two access patterns the system
needs:

* random-walk steps (uniform neighbor choice, degree and weight lookups),
  served from plain adjacency lists plus an optional CSR snapshot;
* hop-distance queries (push-based baselines pay one message per hop),
  served by cached BFS.

Node ids are stable non-negative integers and are never reused, so a tuple
sampled at occasion ``k`` can name its host node at occasion ``k+1`` even
across churn.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

import numpy as np

from repro.errors import TopologyError

Edge = tuple[int, int]


class OverlayGraph:
    """Undirected dynamic graph over stable integer node ids.

    Parameters
    ----------
    edges:
        Initial edge list. Node ids are inferred from the edges plus
        ``n_nodes`` isolated-node padding if given.
    n_nodes:
        If provided, nodes ``0..n_nodes-1`` all exist even when isolated in
        ``edges`` (isolated nodes are legal transiently but the sampler
        refuses to run on a disconnected overlay).
    """

    def __init__(self, edges: Iterable[Edge], n_nodes: int | None = None) -> None:
        self._adjacency: dict[int, list[int]] = {}
        self._neighbor_sets: dict[int, set[int]] = {}
        self._next_id = 0
        self._version = 0
        self._bfs_cache: dict[int, tuple[int, dict[int, int]]] = {}
        if n_nodes is not None:
            for node in range(n_nodes):
                self._ensure_node(node)
        for u, v in edges:
            self._ensure_node(u)
            self._ensure_node(v)
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone counter bumped on every structural change."""
        return self._version

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: int) -> bool:
        return node in self._adjacency

    def nodes(self) -> list[int]:
        """All live node ids, sorted."""
        return sorted(self._adjacency)

    def iter_nodes(self) -> Iterator[int]:
        return iter(self._adjacency)

    def edges(self) -> list[Edge]:
        """All edges as sorted ``(min, max)`` pairs."""
        seen = []
        for u, neighbors in self._adjacency.items():
            for v in neighbors:
                if u < v:
                    seen.append((u, v))
        return sorted(seen)

    def n_edges(self) -> int:
        return sum(len(v) for v in self._adjacency.values()) // 2

    def neighbors(self, node: int) -> list[int]:
        """Neighbor list of ``node`` (insertion-ordered, deterministic)."""
        return self._adjacency[node]

    def degree(self, node: int) -> int:
        return len(self._adjacency[node])

    def has_edge(self, u: int, v: int) -> bool:
        return u in self._neighbor_sets and v in self._neighbor_sets[u]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def _ensure_node(self, node: int) -> None:
        if node < 0:
            raise TopologyError(f"node ids must be non-negative, got {node}")
        if node not in self._adjacency:
            self._adjacency[node] = []
            self._neighbor_sets[node] = set()
            self._version += 1
        self._next_id = max(self._next_id, node + 1)

    def add_edge(self, u: int, v: int) -> None:
        """Add an undirected edge; no-op if it already exists."""
        if u == v:
            raise TopologyError(f"self loops are not allowed (node {u})")
        self._ensure_node(u)
        self._ensure_node(v)
        if v in self._neighbor_sets[u]:
            return
        self._adjacency[u].append(v)
        self._adjacency[v].append(u)
        self._neighbor_sets[u].add(v)
        self._neighbor_sets[v].add(u)
        self._version += 1

    def remove_edge(self, u: int, v: int) -> None:
        if not self.has_edge(u, v):
            raise TopologyError(f"edge ({u}, {v}) does not exist")
        self._adjacency[u].remove(v)
        self._adjacency[v].remove(u)
        self._neighbor_sets[u].discard(v)
        self._neighbor_sets[v].discard(u)
        self._version += 1

    def join(
        self,
        attach_to: Iterable[int] | None = None,
        n_links: int = 2,
        rng: np.random.Generator | int | None = None,
    ) -> int:
        """Add a new node and return its id.

        ``attach_to`` names the bootstrap neighbors explicitly; otherwise
        ``n_links`` distinct live nodes are chosen uniformly with ``rng``
        (mirroring a Gnutella-style bootstrap). ``rng`` may be a
        ``Generator`` threaded by the caller (the churn process does this)
        or an int seed; when omitted, the choice is seeded from the
        current topology state so identical graph histories pick
        identical bootstrap links on every rerun.
        """
        node = self._next_id
        self._ensure_node(node)
        if attach_to is None:
            candidates = [other for other in self._adjacency if other != node]
            if candidates:
                if not isinstance(rng, np.random.Generator):
                    seed = (node, self._version) if rng is None else rng
                    rng = np.random.default_rng(seed)
                count = min(n_links, len(candidates))
                picks = rng.choice(len(candidates), size=count, replace=False)
                attach_to = [candidates[int(i)] for i in picks]
            else:
                attach_to = []
        for neighbor in attach_to:
            if neighbor == node:
                continue
            self.add_edge(node, neighbor)
        return node

    def leave(self, node: int, rewire: bool = True) -> None:
        """Remove ``node``.

        With ``rewire=True`` (default) the departing node's neighbors are
        stitched into a ring among themselves, the standard unstructured
        overlay repair that keeps the component connected through the
        departure.
        """
        if node not in self._adjacency:
            raise TopologyError(f"node {node} does not exist")
        neighbors = list(self._adjacency[node])
        for neighbor in neighbors:
            self._adjacency[neighbor].remove(node)
            self._neighbor_sets[neighbor].discard(node)
        del self._adjacency[node]
        del self._neighbor_sets[node]
        self._version += 1
        if rewire and len(neighbors) > 1:
            for left, right in zip(neighbors, neighbors[1:]):
                if not self.has_edge(left, right):
                    self.add_edge(left, right)

    # ------------------------------------------------------------------
    # analysis helpers
    # ------------------------------------------------------------------

    def is_connected(self) -> bool:
        """True when every live node is reachable from every other one."""
        if not self._adjacency:
            return True
        start = next(iter(self._adjacency))
        return len(self.hop_distances(start)) == len(self._adjacency)

    def components(self) -> list[list[int]]:
        """Connected components as sorted id lists, ordered by smallest member.

        Deterministic (no RNG, no cache interaction): the overlay repair
        in :meth:`bridge_components` and the partition healer both need a
        stable component enumeration to stay reproducible.
        """
        seen: set[int] = set()
        components: list[list[int]] = []
        for start in self.nodes():
            if start in seen:
                continue
            member = {start}
            frontier = deque([start])
            while frontier:
                node = frontier.popleft()
                for neighbor in self._adjacency[node]:
                    if neighbor not in member:
                        member.add(neighbor)
                        frontier.append(neighbor)
            seen |= member
            components.append(sorted(member))
        return components

    def bridge_components(
        self,
        rng: np.random.Generator,
        max_degree: int | None = None,
    ) -> list[Edge]:
        """Reconnect a fragmented overlay by adding bridge edges.

        Chains the connected components together (component ``k`` to
        component ``k+1``, ordered by smallest member), which restores
        connectivity with the minimum number of new links. Within each
        component the bridge endpoint is drawn by ``rng`` among the nodes
        of minimal *current* degree that still have headroom under
        ``max_degree`` — degree accounting is live across the repair, so
        an interior component never funnels both of its bridges into one
        node unless it must. When every node in a component is already at
        the bound, connectivity wins: the minimal-degree node takes the
        bridge anyway (an overlay split is worse than one over-degree
        link). Returns the edges added, as sorted pairs.
        """
        if max_degree is not None and max_degree < 1:
            raise TopologyError(
                f"max_degree must be >= 1, got {max_degree}"
            )
        components = self.components()
        added: list[Edge] = []
        if len(components) <= 1:
            return added
        degree = {
            node: self.degree(node)
            for component in components
            for node in component
        }

        def pick(component: list[int]) -> int:
            eligible = [
                node
                for node in component
                if max_degree is None or degree[node] < max_degree
            ]
            if not eligible:
                eligible = component
            lowest = min(degree[node] for node in eligible)
            tied = [node for node in eligible if degree[node] == lowest]
            return tied[int(rng.integers(len(tied)))]

        for left, right in zip(components, components[1:]):
            u = pick(left)
            v = pick(right)
            self.add_edge(u, v)
            degree[u] += 1
            degree[v] += 1
            added.append((min(u, v), max(u, v)))
        return added

    def hop_distances(self, source: int) -> dict[int, int]:
        """BFS hop counts from ``source`` to every reachable node.

        Results are cached until the graph next mutates; push-based
        baselines call this once per topology version rather than once per
        pushed tuple.
        """
        cached = self._bfs_cache.get(source)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        if source not in self._adjacency:
            raise TopologyError(f"node {source} does not exist")
        distances = {source: 0}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            next_hop = distances[node] + 1
            for neighbor in self._adjacency[node]:
                if neighbor not in distances:
                    distances[neighbor] = next_hop
                    frontier.append(neighbor)
        self._bfs_cache = {source: (self._version, distances)}
        return distances

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compact CSR snapshot ``(node_ids, offsets, targets)``.

        ``node_ids[i]`` is the id of compact row ``i``; ``targets[offsets[i]:
        offsets[i+1]]`` are compact indices of its neighbors. Random walks
        over a static occasion run on this snapshot for speed.
        """
        node_ids = np.array(self.nodes(), dtype=np.int64)
        index_of = {int(node): i for i, node in enumerate(node_ids)}
        offsets = np.zeros(len(node_ids) + 1, dtype=np.int64)
        for i, node in enumerate(node_ids):
            offsets[i + 1] = offsets[i] + len(self._adjacency[int(node)])
        targets = np.empty(int(offsets[-1]), dtype=np.int64)
        cursor = 0
        for node in node_ids:
            for neighbor in self._adjacency[int(node)]:
                targets[cursor] = index_of[neighbor]
                cursor += 1
        return node_ids, offsets, targets

    def copy(self) -> "OverlayGraph":
        """Deep structural copy (node ids preserved)."""
        clone = OverlayGraph([], n_nodes=0)
        clone._adjacency = {u: list(vs) for u, vs in self._adjacency.items()}
        clone._neighbor_sets = {u: set(vs) for u, vs in self._neighbor_sets.items()}
        clone._next_id = self._next_id
        return clone
