"""Correlated failures: scheduled overlay partitions and flapping links.

The fault layer in :mod:`repro.network.faults` draws every loss and crash
independently, which cannot express the *correlated* failures real
unstructured overlays suffer: a backbone cut splits the network into
regions, a congested link flaps up and down, a regional outage takes a
whole neighborhood dark at once. This module is the correlated
counterpart:

* :class:`PartitionEpisode` declares one scheduled cut — at ``start`` the
  overlay is split into ``len(fractions)`` named regions for ``duration``
  ticks, then heals;
* :class:`PartitionSchedule` bundles episodes with a per-step link-flap
  process (individual links silently dropping all traffic for a few
  ticks);
* :class:`PartitionPlan` is one seeded realization. Like
  :class:`~repro.network.faults.FaultPlan` it owns a private generator
  (its own RNG stream — DGL011 labels ``PartitionPlan`` as the
  ``partition`` sink) so enabling partitions never perturbs walk or fault
  randomness.

Partitions block *delivery*, not topology: the graph keeps its edges, but
every message whose endpoints sit in different regions of an open episode
(or on a flapped link) is dropped at the same protocol delivery point
where :class:`FaultPlan` loses messages. That is what makes health
scoring meaningful — nodes keep proposing walks into the dark region and
observe the correlated timeouts. Crashes *during* a partition can leave
the graph genuinely fragmented once the episode heals; with
``heal_policy="repair"`` the plan then stitches the components back
together via :meth:`~repro.network.graph.OverlayGraph.bridge_components`.

The plan composes with :class:`~repro.network.faults.FaultPlan` /
:class:`~repro.network.faults.CrashProcess` /
:class:`~repro.network.churn.ChurnProcess`: all can be stepped in the
same simulation tick against the same graph.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.network.faults import FaultLog
from repro.network.graph import Edge, OverlayGraph
from repro.obs.schema import EVENT_PARTITION_HEAL, EVENT_PARTITION_OPEN

if TYPE_CHECKING:  # pragma: no cover - layering: network stays obs-light
    from repro.obs.tracer import Tracer

HEAL_POLICIES = ("repair", "passive")


def _validated_fractions(fractions: tuple[float, ...]) -> None:
    if len(fractions) < 2:
        raise ValueError(
            f"a partition needs >= 2 regions, got fractions={fractions}"
        )
    if any(f <= 0.0 for f in fractions):
        raise ValueError(f"region fractions must be > 0, got {fractions}")
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError(
            f"region fractions must sum to 1, got {fractions} "
            f"(sum {sum(fractions)})"
        )


class PartitionEpisode:
    """One scheduled cut: regions by fraction, open for a time window.

    ``fractions`` gives the share of live nodes assigned to each region
    when the episode opens (region membership is drawn by the plan's RNG,
    so reruns split identically); ``name`` labels the episode in traces
    and the audit log.
    """

    def __init__(
        self,
        start: int,
        duration: int,
        fractions: tuple[float, ...] = (0.5, 0.5),
        name: str = "",
    ) -> None:
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start}")
        if duration < 1:
            raise ValueError(f"duration must be >= 1, got {duration}")
        _validated_fractions(tuple(fractions))
        self.start = start
        self.duration = duration
        self.fractions = tuple(fractions)
        self.name = name

    @property
    def end(self) -> int:
        """First tick at which the episode is healed."""
        return self.start + self.duration

    def label(self, index: int) -> str:
        """Display name: the explicit name, or ``episode-<index>``."""
        return self.name or f"episode-{index}"


class PartitionSchedule:
    """Episodes plus an independent per-step link-flap process."""

    def __init__(
        self,
        episodes: tuple[PartitionEpisode, ...] = (),
        flap_probability: float = 0.0,
        flap_duration: int = 3,
    ) -> None:
        if not 0.0 <= flap_probability < 1.0:
            raise ValueError(
                f"flap_probability must be in [0, 1), got {flap_probability}"
            )
        if flap_duration < 1:
            raise ValueError(
                f"flap_duration must be >= 1, got {flap_duration}"
            )
        self.episodes = tuple(episodes)
        self.flap_probability = flap_probability
        self.flap_duration = flap_duration

    @property
    def is_noop(self) -> bool:
        """True when the schedule never blocks anything."""
        return not self.episodes and self.flap_probability == 0.0


class PartitionPlan:
    """One seeded realization of a :class:`PartitionSchedule`.

    Drive it with :meth:`step` once per simulation tick (alongside churn
    and crash processes); query :meth:`blocked` at delivery points and
    :meth:`reachable` / :meth:`reachable_fraction` when re-scoping
    estimates. All partition randomness (region draws, flaps, heal-time
    bridge repair) flows through the plan's private generator.
    """

    def __init__(
        self,
        schedule: PartitionSchedule,
        rng: np.random.Generator | int,
        tracer: "Tracer | None" = None,
        heal_policy: str = "repair",
        max_degree: int | None = None,
    ) -> None:
        if heal_policy not in HEAL_POLICIES:
            raise ValueError(
                f"heal_policy must be one of {HEAL_POLICIES}, "
                f"got {heal_policy!r}"
            )
        self.schedule = schedule
        self.heal_policy = heal_policy
        self._max_degree = max_degree
        self._rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        # imported lazily to keep repro.network importable without obs
        from repro.obs.tracer import NULL_TRACER

        self._tracer = tracer if tracer is not None else NULL_TRACER
        #: audit trail of partition opens/heals/flaps, same shape as the
        #: FaultPlan log so experiments can interleave both timelines
        self.log = FaultLog()
        #: episode index -> node -> region, for currently open episodes
        self._regions: dict[int, dict[int, int]] = {}
        self._opened: set[int] = set()
        self._healed: set[int] = set()
        #: flapped link -> first tick at which it is back up
        self._flapped: dict[Edge, int] = {}
        #: True while at least one episode is open or a link is flapped.
        #: A plain attribute (maintained by :meth:`step`) rather than a
        #: property: the protocol runtime reads it per *message*, and an
        #: inactive plan must cost one attribute load on that hot path.
        self.active = False

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------

    @property
    def is_noop(self) -> bool:
        """True when the schedule never blocks anything."""
        return self.schedule.is_noop

    def region_of(self, episode_index: int, node: int) -> int | None:
        """``node``'s region in an open episode (lazily assigned).

        Nodes that join the overlay while an episode is open are assigned
        a region on first contact, drawn from the episode's fractions with
        the plan's RNG — a late joiner lands on one side of the cut, it
        does not straddle it. Returns ``None`` when the episode is not
        open.
        """
        assignment = self._regions.get(episode_index)
        if assignment is None:
            return None
        region = assignment.get(node)
        if region is None:
            fractions = np.array(
                self.schedule.episodes[episode_index].fractions
            )
            region = int(self._rng.choice(len(fractions), p=fractions))
            assignment[node] = region
        return region

    def blocked(self, u: int, v: int) -> bool:
        """True when delivery between ``u`` and ``v`` is currently cut."""
        for index in self._regions:
            if self.region_of(index, u) != self.region_of(index, v):
                return True
        if not self._flapped:
            return False
        edge = (u, v) if u < v else (v, u)
        return edge in self._flapped

    def reachable(self, graph: OverlayGraph, origin: int) -> dict[int, int]:
        """BFS hop counts from ``origin`` over *unblocked* edges only.

        This is the population a querying node can actually sample while
        the partition is open — the scope its estimates must be honest
        about.
        """
        if not self.active:
            return graph.hop_distances(origin)
        distances = {origin: 0}
        frontier = deque([origin])
        while frontier:
            node = frontier.popleft()
            next_hop = distances[node] + 1
            for neighbor in graph.neighbors(node):
                if neighbor not in distances and not self.blocked(
                    node, neighbor
                ):
                    distances[neighbor] = next_hop
                    frontier.append(neighbor)
        return distances

    def reachable_fraction(self, graph: OverlayGraph, origin: int) -> float:
        """Fraction of live nodes reachable from ``origin`` right now."""
        if len(graph) == 0:
            return 1.0
        return len(self.reachable(graph, origin)) / len(graph)

    # ------------------------------------------------------------------
    # the per-tick process
    # ------------------------------------------------------------------

    def step(self, time: int, graph: OverlayGraph) -> None:
        """Advance the plan to ``time``: open/heal due episodes, flap links."""
        if self._flapped:
            self._flapped = {
                edge: up_at
                for edge, up_at in self._flapped.items()
                if up_at > time
            }
        for index, episode in enumerate(self.schedule.episodes):
            if (
                index not in self._opened
                and episode.start <= time < episode.end
            ):
                self._open_episode(index, episode, time, graph)
            if (
                index in self._opened
                and index not in self._healed
                and time >= episode.end
            ):
                self._heal_episode(index, episode, time, graph)
        flap_p = self.schedule.flap_probability
        if flap_p > 0.0:
            for u, v in graph.edges():
                if float(self._rng.random()) < flap_p:
                    self._flapped[(u, v)] = (
                        time + self.schedule.flap_duration
                    )
                    self.log.record(
                        time, "link_flap", detail=f"({u}, {v})"
                    )
        self.active = bool(self._regions) or bool(self._flapped)

    def _open_episode(
        self,
        index: int,
        episode: PartitionEpisode,
        time: int,
        graph: OverlayGraph,
    ) -> None:
        nodes = graph.nodes()
        order = self._rng.permutation(len(nodes))
        boundaries = [
            int(round(cumulative * len(nodes)))
            for cumulative in np.cumsum(episode.fractions)
        ]
        assignment = {
            nodes[int(position)]: bisect_right(boundaries, rank)
            for rank, position in enumerate(order)
        }
        # rounding may push the last boundary below len(nodes); clamp any
        # overflow rank into the final region
        n_regions = len(episode.fractions)
        for node, region in assignment.items():
            if region >= n_regions:
                assignment[node] = n_regions - 1
        self._regions[index] = assignment
        self._opened.add(index)
        n_blocked = sum(
            1
            for u, v in graph.edges()
            if assignment.get(u) != assignment.get(v)
        )
        self.log.record(
            time,
            "partition_open",
            detail=(
                f"{episode.label(index)}: {n_regions} regions, "
                f"{n_blocked} links cut for {episode.duration} ticks"
            ),
        )
        self._tracer.event(
            EVENT_PARTITION_OPEN,
            time=time,
            episode=episode.label(index),
            n_regions=n_regions,
            n_blocked=n_blocked,
            duration=episode.duration,
        )

    def _heal_episode(
        self,
        index: int,
        episode: PartitionEpisode,
        time: int,
        graph: OverlayGraph,
    ) -> None:
        assignment = self._regions.pop(index)
        self._healed.add(index)
        n_restored = sum(
            1
            for u, v in graph.edges()
            if assignment.get(u) != assignment.get(v)
        )
        n_bridges = 0
        if (
            self.heal_policy == "repair"
            and len(graph) > 1
            and not graph.is_connected()
        ):
            # crashes during the episode fragmented the graph for real;
            # stitch the survivors back into one component
            n_bridges = len(
                graph.bridge_components(self._rng, max_degree=self._max_degree)
            )
        repaired = n_bridges > 0
        self.log.record(
            time,
            "partition_heal",
            detail=(
                f"{episode.label(index)}: {n_restored} links restored"
                + (f", {n_bridges} bridge edges added" if repaired else "")
            ),
        )
        self._tracer.event(
            EVENT_PARTITION_HEAL,
            time=time,
            episode=episode.label(index),
            n_restored=n_restored,
            repaired=repaired,
            n_bridges=n_bridges,
        )
