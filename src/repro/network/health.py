"""Origin-side link health: scores, circuit breakers, partition detection.

A node supervising its own walks (the :class:`RetryPolicy` machinery in
:mod:`repro.protocol.runtime`) already observes which walks die. This
module turns those observations into *routing* decisions, using only
local knowledge:

* every first hop out of the origin carries an implicit probe: a walk
  that completes vouches for the neighbor it left through, a walk that
  times out or exhausts its retries indicts it;
* a per-neighbor :class:`CircuitBreaker` trips after
  ``failure_threshold`` consecutive failures — the origin stops proposing
  walks through that link (saving the doomed messages), waits out a
  ``cooldown``, then goes *half-open* and risks exactly one probe walk;
  success closes the breaker, failure re-opens it;
* :class:`HealthMonitor` aggregates the breakers per origin, keeps an
  exponentially-weighted health score per neighbor, and detects a
  *partition* from the correlation the independent fault model never
  produces: when at least ``detect_fraction`` of an origin's neighbors
  have open breakers at once, the origin records ``partition_suspected``
  on the fault log (and ``partition_cleared`` when links recover).

Everything here is deterministic given the walk outcomes — the monitor
draws no randomness of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.network.faults import FaultLog
from repro.obs.schema import (
    EVENT_BREAKER_CLOSE,
    EVENT_BREAKER_PROBE,
    EVENT_BREAKER_TRIP,
)

if TYPE_CHECKING:  # pragma: no cover - layering: network stays obs-light
    from repro.obs.tracer import Tracer

#: breaker states
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


@dataclass(frozen=True)
class HealthConfig:
    """Tuning of the per-neighbor breakers and the partition detector.

    ``failure_threshold`` consecutive first-hop failures trip a breaker;
    an open breaker re-admits one probe after ``cooldown`` ticks.
    ``detect_fraction`` of an origin's known first-hop neighbors must be
    open simultaneously to suspect a partition. ``score_decay`` is the
    EWMA weight of history in the health score (1 = frozen, 0 = only the
    last outcome counts).
    """

    failure_threshold: int = 3
    cooldown: int = 20
    detect_fraction: float = 0.5
    score_decay: float = 0.8

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown < 1:
            raise ValueError(f"cooldown must be >= 1, got {self.cooldown}")
        if not 0.0 < self.detect_fraction <= 1.0:
            raise ValueError(
                f"detect_fraction must be in (0, 1], got {self.detect_fraction}"
            )
        if not 0.0 <= self.score_decay < 1.0:
            raise ValueError(
                f"score_decay must be in [0, 1), got {self.score_decay}"
            )


class CircuitBreaker:
    """Three-state breaker guarding one origin→neighbor first hop."""

    def __init__(self, config: HealthConfig) -> None:
        self._config = config
        self.state = CLOSED
        self.consecutive_failures = 0
        self._opened_at = 0
        self._probing = False

    @property
    def is_open(self) -> bool:
        """True while the breaker refuses regular traffic."""
        return self.state != CLOSED

    def admits(self, time: int) -> str | None:
        """Whether a walk may leave through this link right now.

        Returns ``"closed"`` (normal traffic), ``"probe"`` (the breaker
        would go half-open: the caller may send exactly one probe walk and
        must confirm via :meth:`start_probe`), or ``None`` (suppressed).
        """
        if self.state == CLOSED:
            return CLOSED
        if self.state == OPEN:
            if time - self._opened_at >= self._config.cooldown:
                return "probe"
            return None
        # HALF_OPEN: one probe already in flight
        return None if self._probing else "probe"

    def start_probe(self, time: int) -> None:
        """The caller launched the probe walk :meth:`admits` offered."""
        self.state = HALF_OPEN
        self._probing = True

    def record_success(self, time: int) -> None:
        """A walk through this link completed: close and reset."""
        self.state = CLOSED
        self.consecutive_failures = 0
        self._probing = False

    def record_failure(self, time: int) -> bool:
        """A walk through this link died; returns True when this trips.

        A failed half-open probe re-opens immediately (and restarts the
        cooldown) but does not count as a new trip.
        """
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self.state = OPEN
            self._opened_at = time
            self._probing = False
            return False
        if (
            self.state == CLOSED
            and self.consecutive_failures >= self._config.failure_threshold
        ):
            self.state = OPEN
            self._opened_at = time
            return True
        return False


class HealthMonitor:
    """Per-origin neighbor health: breakers, scores, partition detection.

    One monitor serves a whole :class:`~repro.protocol.runtime.
    ProtocolSampler`; breakers are keyed ``(origin, neighbor)`` because
    health is an *origin-side* judgement about a first hop, not a global
    property of the link.
    """

    def __init__(
        self,
        config: HealthConfig | None = None,
        tracer: "Tracer | None" = None,
        fault_log: FaultLog | None = None,
    ) -> None:
        self.config = config if config is not None else HealthConfig()
        # imported lazily to keep repro.network importable without obs
        from repro.obs.tracer import NULL_TRACER

        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._fault_log = fault_log if fault_log is not None else FaultLog()
        self._breakers: dict[tuple[int, int], CircuitBreaker] = {}
        self._scores: dict[tuple[int, int], float] = {}
        self._suspected: set[int] = set()
        self.trips = 0
        self.probes = 0

    # ------------------------------------------------------------------
    # routing-side API (called while choosing a first hop)
    # ------------------------------------------------------------------

    def breaker(self, origin: int, neighbor: int) -> CircuitBreaker:
        """The breaker guarding ``origin -> neighbor`` (created lazily)."""
        key = (origin, neighbor)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.config)
            self._breakers[key] = breaker
        return breaker

    def score(self, origin: int, neighbor: int) -> float:
        """EWMA health score in [0, 1]; unknown links start healthy."""
        return self._scores.get((origin, neighbor), 1.0)

    def admitted(
        self, origin: int, neighbors: list[int], time: int
    ) -> tuple[list[int], set[int]]:
        """Split ``neighbors`` into (admitted, probe-candidates).

        Admitted neighbors may carry a walk right now; the subset in the
        returned probe set would do so as a half-open probe (confirm with
        :meth:`start_probe` once one is actually chosen). Order of the
        admitted list follows ``neighbors`` so a seeded uniform choice
        over it stays deterministic.
        """
        admitted: list[int] = []
        probes: set[int] = set()
        for neighbor in neighbors:
            verdict = self.breaker(origin, neighbor).admits(time)
            if verdict is None:
                continue
            admitted.append(neighbor)
            if verdict == "probe":
                probes.add(neighbor)
        return admitted, probes

    def start_probe(self, origin: int, neighbor: int, time: int) -> None:
        """Confirm the probe :meth:`admitted` offered for this neighbor."""
        self.breaker(origin, neighbor).start_probe(time)
        self.probes += 1
        self._tracer.event(
            EVENT_BREAKER_PROBE, time=time, origin=origin, neighbor=neighbor
        )

    # ------------------------------------------------------------------
    # outcome feedback (called by the walk supervisor)
    # ------------------------------------------------------------------

    def record_outcome(
        self,
        origin: int,
        neighbor: int,
        ok: bool,
        time: int,
        n_neighbors: int | None = None,
    ) -> None:
        """Feed one supervised first-hop outcome back into the health state.

        ``n_neighbors`` is the origin's current neighbor count, used by
        the partition detector to judge what fraction of its links look
        dead; pass it when known (the protocol runtime always does).
        """
        key = (origin, neighbor)
        decay = self.config.score_decay
        self._scores[key] = decay * self.score(origin, neighbor) + (
            1.0 - decay
        ) * (1.0 if ok else 0.0)
        breaker = self.breaker(origin, neighbor)
        if ok:
            was_open = breaker.is_open
            breaker.record_success(time)
            if was_open:
                self._tracer.event(
                    EVENT_BREAKER_CLOSE,
                    time=time,
                    origin=origin,
                    neighbor=neighbor,
                )
        elif breaker.record_failure(time):
            self.trips += 1
            self._fault_log.record(
                time,
                "breaker_trip",
                node=origin,
                detail=(
                    f"neighbor {neighbor} after "
                    f"{breaker.consecutive_failures} failures"
                ),
            )
            self._tracer.event(
                EVENT_BREAKER_TRIP,
                time=time,
                origin=origin,
                neighbor=neighbor,
                failures=breaker.consecutive_failures,
            )
        self._update_detector(origin, time, n_neighbors)

    # ------------------------------------------------------------------
    # origin-side partition detection
    # ------------------------------------------------------------------

    def open_fraction(self, origin: int, n_neighbors: int | None = None) -> float:
        """Fraction of the origin's first-hop links with open breakers."""
        keys = [key for key in self._breakers if key[0] == origin]
        total = n_neighbors if n_neighbors else len(keys)
        if total <= 0:
            return 0.0
        n_open = sum(1 for key in keys if self._breakers[key].is_open)
        return min(1.0, n_open / total)

    def partition_suspected(self, origin: int) -> bool:
        """True while the detector believes ``origin`` sits in a partition."""
        return origin in self._suspected

    def _update_detector(
        self, origin: int, time: int, n_neighbors: int | None
    ) -> None:
        fraction = self.open_fraction(origin, n_neighbors)
        if (
            fraction >= self.config.detect_fraction
            and origin not in self._suspected
        ):
            self._suspected.add(origin)
            self._fault_log.record(
                time,
                "partition_suspected",
                node=origin,
                detail=f"{fraction:.0%} of first-hop links dead",
            )
        elif fraction < self.config.detect_fraction and origin in self._suspected:
            self._suspected.discard(origin)
            self._fault_log.record(
                time,
                "partition_cleared",
                node=origin,
                detail=f"open-breaker fraction back to {fraction:.0%}",
            )
