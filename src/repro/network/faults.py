"""Fault model for the unreliable overlay.

The paper's setting (Section II, VI-A) is an unstructured P2P network with
SETI@HOME-like churn: links drop messages, peers crash without warning,
and nothing guarantees a walk token or a sample-return message actually
arrives. This module is the single source of injected unreliability:

* :class:`FaultConfig` declares the failure rates (per-hop message loss,
  per-step node crashes, per-step link failures, delivery-latency jitter);
* :class:`FaultPlan` is one seeded *realization* of a config — all fault
  draws flow through its private generator so a fixed seed reproduces the
  exact same loss/crash/jitter sequence on every rerun;
* :class:`FaultLog` records every injected or observed fault as a
  :class:`FaultEvent`, the audit trail behind the "honest degradation"
  contract: a handler that hits a failure records an event instead of
  raising (digest-lint DGL006);
* :class:`CrashProcess` applies the per-step crash process to an
  :class:`~repro.network.graph.OverlayGraph`. It composes with
  :class:`~repro.network.churn.ChurnProcess` — both mutate the same graph
  and can be scheduled in the same simulation step (churn models
  *graceful* session behavior, crashes model *failures*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.network.graph import OverlayGraph


@dataclass(frozen=True)
class FaultConfig:
    """Failure rates of the unreliable overlay.

    ``message_loss`` is the probability each hop-level delivery is lost in
    transit; ``crash_probability`` is the per-step chance each unprotected
    node crashes (an ungraceful leave); ``link_failure_probability`` is
    the per-step chance each live link drops; ``latency_jitter`` adds a
    uniform ``0..jitter`` extra ticks to every successful delivery.
    ``crash_rewire`` controls whether neighbors of a crashed node detect
    the crash and stitch themselves together (the same repair churn uses);
    ``min_nodes`` floors how far crashes may shrink the overlay.
    """

    message_loss: float = 0.0
    crash_probability: float = 0.0
    link_failure_probability: float = 0.0
    latency_jitter: int = 0
    crash_rewire: bool = True
    min_nodes: int = 2

    def __post_init__(self) -> None:
        for name in ("message_loss", "crash_probability", "link_failure_probability"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {value}")
        if self.latency_jitter < 0:
            raise ValueError(
                f"latency_jitter must be >= 0, got {self.latency_jitter}"
            )
        if self.min_nodes < 1:
            raise ValueError(f"min_nodes must be >= 1, got {self.min_nodes}")

    @property
    def is_noop(self) -> bool:
        """True when this config injects no faults at all."""
        return (
            self.message_loss == 0.0
            and self.crash_probability == 0.0
            and self.link_failure_probability == 0.0
            and self.latency_jitter == 0
        )


@dataclass(frozen=True)
class FaultEvent:
    """One recorded fault: what went wrong, where, and to whom.

    ``time`` is simulated time (``-1`` when the fault occurred outside the
    event loop, e.g. in the abstract matrix-based sampler). ``walker_id``
    and ``node`` are ``None`` when not applicable.
    """

    time: int
    kind: str
    walker_id: int | None = None
    node: int | None = None
    detail: str = ""


class FaultLog:
    """Append-only audit trail of fault events.

    Handlers convert failures into entries here instead of raising
    (digest-lint DGL006); experiments read the per-kind counts to report
    what actually happened alongside the estimates.
    """

    def __init__(self) -> None:
        self._events: list[FaultEvent] = []
        self._listeners: dict[str, Callable[[FaultEvent], None]] = {}

    def subscribe(
        self, listener: Callable[[FaultEvent], None], key: str
    ) -> None:
        """Register ``listener`` for every *future* event.

        Listeners are keyed: subscribing again under the same key replaces
        the old listener rather than adding a duplicate, so a log shared
        between components (e.g. a fault plan wired into both an operator
        and a protocol sampler) can be bridged to the same observer twice
        without double-counting.
        """
        self._listeners[key] = listener

    def unsubscribe(self, key: str) -> bool:
        """Remove the listener registered under ``key``.

        Returns True when a listener was removed, False when the key was
        unknown (already unsubscribed, or never registered). Long-lived
        sessions that attach and detach observers must call this so the
        log does not accumulate dead listeners.
        """
        return self._listeners.pop(key, None) is not None

    def record(
        self,
        time: int,
        kind: str,
        walker_id: int | None = None,
        node: int | None = None,
        detail: str = "",
    ) -> None:
        """Append one fault event."""
        event = FaultEvent(
            time=time, kind=kind, walker_id=walker_id, node=node, detail=detail
        )
        self._events.append(event)
        for listener in self._listeners.values():
            listener(event)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> list[FaultEvent]:
        """All recorded events, oldest first (copy)."""
        return list(self._events)

    def counts(self) -> dict[str, int]:
        """Number of recorded events per kind, kinds in sorted order.

        Deterministic ordering (not insertion order) so reports and JSON
        artifacts derived from the counts are stable across runs whose
        faults merely interleave differently.
        """
        totals: dict[str, int] = {}
        for event in self._events:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return {kind: totals[kind] for kind in sorted(totals)}

    def count(self, kind: str) -> int:
        """Number of recorded events of one kind."""
        return sum(1 for event in self._events if event.kind == kind)

    def summary(self) -> str:
        """Human-readable per-kind tally, e.g. ``message_loss=3, node_crash=1``."""
        counts = self.counts()
        if not counts:
            return "no faults recorded"
        return ", ".join(f"{kind}={counts[kind]}" for kind in sorted(counts))


class FaultPlan:
    """One seeded realization of a :class:`FaultConfig`.

    All fault randomness flows through the plan's own generator, separate
    from the protocol's sampling RNG, so enabling faults never perturbs
    the walk trajectories themselves — and a fixed seed reproduces the
    identical fault sequence (the determinism the acceptance criteria
    check by comparing ledgers across reruns).
    """

    def __init__(
        self,
        config: FaultConfig,
        rng: np.random.Generator | int,
    ) -> None:
        self.config = config
        self._rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        self.log = FaultLog()

    def message_lost(self) -> bool:
        """Draw whether one hop-level delivery is lost in transit."""
        if self.config.message_loss <= 0.0:
            return False
        return bool(self._rng.random() < self.config.message_loss)

    def walk_lost(self, n_hops: int) -> bool:
        """Draw whether a whole ``n_hops``-message walk loses any message.

        Used by the abstract (matrix-based) sampler, which executes walks
        in batch rather than hop by hop: the survival probability of a
        walk whose chain spans ``n_hops`` messages is
        ``(1 - message_loss) ** n_hops``.
        """
        if self.config.message_loss <= 0.0 or n_hops <= 0:
            return False
        survival = (1.0 - self.config.message_loss) ** n_hops
        return bool(self._rng.random() >= survival)

    def delivery_delay(self, base: int) -> int:
        """Latency of one successful delivery: ``base`` plus jitter."""
        jitter = self.config.latency_jitter
        if jitter <= 0:
            return base
        return base + int(self._rng.integers(0, jitter + 1))

    def record(
        self,
        time: int,
        kind: str,
        walker_id: int | None = None,
        node: int | None = None,
        detail: str = "",
    ) -> None:
        """Record a fault event on the plan's log."""
        self.log.record(time, kind, walker_id=walker_id, node=node, detail=detail)


class CrashProcess:
    """Per-step ungraceful departures, driven by a :class:`FaultPlan`.

    Mirrors :class:`~repro.network.churn.ChurnProcess` (and composes with
    it on the same graph): each step every live, unprotected node crashes
    with ``config.crash_probability`` and every live link drops with
    ``config.link_failure_probability``. Crashed nodes are recorded on the
    plan's log; the ``min_nodes`` floor is applied after a seeded shuffle
    so survival is not biased by node-id order.
    """

    def __init__(
        self,
        graph: OverlayGraph,
        plan: FaultPlan,
        protected: set[int] | None = None,
    ) -> None:
        self._graph = graph
        self._plan = plan
        self._protected = set(protected or ())

    @property
    def protected(self) -> set[int]:
        return set(self._protected)

    def protect(self, node: int) -> None:
        """Exempt ``node`` from crashes (typically the querying node)."""
        self._protected.add(node)

    def step(self, time: int) -> list[int]:
        """Run one crash round at simulated ``time``; returns crashed ids.

        ``time`` is required: crash events must carry the simulated time
        they occurred at so fault timelines line up with walk spans (the
        old ``-1`` default silently produced untimestamped audit entries).
        """
        plan = self._plan
        config = plan.config
        rng = plan._rng
        crashed: list[int] = []
        if config.crash_probability > 0.0:
            candidates = [
                node
                for node in self._graph.nodes()
                if node not in self._protected
            ]
            if candidates:
                draws = rng.random(len(candidates))
                doomed = [
                    node
                    for node, draw in zip(candidates, draws)
                    if draw < config.crash_probability
                ]
                headroom = len(self._graph) - config.min_nodes
                if 0 <= headroom < len(doomed):
                    order = rng.permutation(len(doomed))
                    doomed = [doomed[int(i)] for i in order]
                for node in doomed[: max(0, headroom)]:
                    self._graph.leave(node, rewire=config.crash_rewire)
                    crashed.append(node)
                    plan.record(time, "node_crash", node=node)
        if config.link_failure_probability > 0.0:
            for u, v in self._graph.edges():
                if rng.random() < config.link_failure_probability:
                    # never orphan an endpoint: a node's last link stays up
                    if self._graph.degree(u) > 1 and self._graph.degree(v) > 1:
                        self._graph.remove_edge(u, v)
                        plan.record(
                            time, "link_failure", detail=f"({u}, {v})"
                        )
        return crashed
