"""``ALL + ALL``: the exact push-everything baseline.

At every time step, every tuple's current value travels from its hosting
node to the querying node over the overlay; the querying node then
evaluates the aggregate exactly. Cost per step is therefore::

    sum over nodes v of m_v * hops(v, origin)

This only supports exact queries (the paper's framing) and anchors the
top of the Fig. 5-b communication-cost comparison.
"""

from __future__ import annotations

from repro.core.query import Query
from repro.core.result import RunningResult, UpdateRecord
from repro.db.aggregates import exact_aggregate
from repro.db.relation import P2PDatabase
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.sim.metrics import RunMetrics


class PushAllBaseline:
    """Exact continuous evaluation by pushing the whole relation each step."""

    def __init__(
        self,
        graph: OverlayGraph,
        database: P2PDatabase,
        query: Query,
        origin: int,
        ledger: MessageLedger | None = None,
    ) -> None:
        if origin not in graph:
            raise QueryError(f"querying node {origin} is not in the overlay")
        database.schema.validate_expression(query.expression)
        self._graph = graph
        self._database = database
        self._query = query
        self._origin = origin
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.metrics = RunMetrics()
        self.result = RunningResult()

    def step(self, time: int) -> float:
        """Push everything, evaluate exactly, record and return the result."""
        distances = self._graph.hop_distances(self._origin)
        for node in self._database.nodes():
            m_v = len(self._database.store(node))
            if m_v and node != self._origin:
                hops = distances.get(node)
                if hops is None:
                    raise QueryError(
                        f"node {node} is unreachable from the querying node"
                    )
                self.ledger.record_push(m_v * hops)
        if self._database.n_tuples == 0:
            raise QueryError("relation is empty")
        aggregate = exact_aggregate(
            self._database,
            self._query.op,
            self._query.expression,
            self._query.predicate,
        )
        self.result.update(UpdateRecord(time=time, estimate=aggregate))
        self.metrics.snapshot_queries += 1
        return aggregate
