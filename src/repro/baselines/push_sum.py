"""Push-sum gossip aggregation (Kempe et al., the paper's refs [4]/[8]).

The in-network alternative Digest's related work discusses: every node
``i`` holds a pair ``(s_i, w_i)`` initialized to its local contribution
(``s_i`` = sum of its tuples' expression values, ``w_i`` = its tuple
count). Each round every node keeps half of its pair and sends the other
half to a uniformly random neighbor; every node's running ratio
``s_i / w_i`` converges exponentially to the global average
``sum(values) / N``.

Cost model: one message per node per round (each node sends one share),
so a snapshot costs ``N * rounds`` messages — but the answer materializes
at *every* node. The paper's claim, which
:mod:`repro.experiments.related_work` measures, is that this overhead "is
only justified when all nodes of the network issue the same aggregate
query simultaneously": per-querier, gossip costs ``N * rounds / K`` for
``K`` simultaneous queriers while Digest costs ``K``-independent
per-querier sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import Query
from repro.db.aggregates import AggregateOp
from repro.db.relation import P2PDatabase
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger


@dataclass
class PushSumRun:
    """Outcome of one gossip execution."""

    estimate: float  # the ratio at the querying node
    rounds: int
    messages: int
    max_disagreement: float  # spread of node estimates at termination


class PushSumBaseline:
    """Snapshot AVG evaluation by push-sum gossip.

    Each :meth:`run_snapshot` executes a fresh gossip from the current
    database state (the algorithm has no incremental variant; continuous
    queries re-run it per snapshot, which is exactly the cost profile the
    paper criticizes).
    """

    def __init__(
        self,
        graph: OverlayGraph,
        database: P2PDatabase,
        query: Query,
        origin: int,
        rng: np.random.Generator,
        ledger: MessageLedger | None = None,
        tolerance: float = 1e-3,
        max_rounds: int = 10_000,
    ) -> None:
        if query.op is not AggregateOp.AVG:
            raise QueryError(
                f"push-sum computes AVG; got {query.op.value} "
                "(SUM/COUNT need a size estimate on top)"
            )
        if query.predicate is not None:
            raise QueryError("push-sum baseline does not support predicates")
        if origin not in graph:
            raise QueryError(f"querying node {origin} is not in the overlay")
        if tolerance <= 0:
            raise QueryError(f"tolerance must be > 0, got {tolerance}")
        database.schema.validate_expression(query.expression)
        self._graph = graph
        self._database = database
        self._query = query
        self._origin = origin
        self._rng = rng
        self.ledger = ledger if ledger is not None else MessageLedger()
        self._tolerance = tolerance
        self._max_rounds = max_rounds

    def run_snapshot(self) -> PushSumRun:
        """One full gossip: returns the converged estimate at the origin."""
        nodes = self._graph.nodes()
        if not nodes:
            raise QueryError("empty overlay")
        index_of = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        sums = np.zeros(n)
        weights = np.zeros(n)
        expression = self._query.expression
        for i, node in enumerate(nodes):
            store = self._database.store(node)
            if len(store):
                sums[i] = float(
                    expression.evaluate_columns(store.columns()).sum()
                )
                weights[i] = float(len(store))
        if weights.sum() == 0:
            raise QueryError("relation is empty")
        # every node must start with positive mass for the ratio to be
        # defined everywhere; give empty nodes weight epsilon of the mass
        # conservation is preserved by construction (we add nothing)
        messages = 0
        neighbor_lists = [self._graph.neighbors(node) for node in nodes]
        for round_index in range(1, self._max_rounds + 1):
            new_sums = sums * 0.5
            new_weights = weights * 0.5
            targets = [
                index_of[neighbors[int(self._rng.integers(len(neighbors)))]]
                for neighbors in neighbor_lists
            ]
            for i, target in enumerate(targets):
                new_sums[target] += sums[i] * 0.5
                new_weights[target] += weights[i] * 0.5
            sums, weights = new_sums, new_weights
            messages += n
            with np.errstate(divide="ignore", invalid="ignore"):
                ratios = np.where(weights > 0, sums / np.maximum(weights, 1e-300), 0.0)
            live = ratios[weights > 1e-12]
            spread = float(live.max() - live.min()) if live.size else float("inf")
            scale = max(1.0, abs(float(live.mean()))) if live.size else 1.0
            if spread <= self._tolerance * scale:
                break
        self.ledger.record_control(messages, label="gossip")
        i_origin = index_of[self._origin]
        estimate = (
            float(sums[i_origin] / weights[i_origin])
            if weights[i_origin] > 1e-12
            else float(live.mean())
        )
        return PushSumRun(
            estimate=estimate,
            rounds=round_index,
            messages=messages,
            max_disagreement=spread,
        )
