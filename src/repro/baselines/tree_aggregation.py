"""TAG-style tree aggregation (Madden et al., the paper's ref [15]).

In-network aggregation over a spanning tree rooted at the querying node:
every node sends one partial aggregate ``(sum, count)`` to its parent per
epoch, so a snapshot costs only ~``N`` single-hop messages — far cheaper
than push-everything. The catch the paper points out: "with its
tree-based aggregation scheme, it is prone to severe miscalculations due
to frequent fragmentation ... specially in the dynamic peer-to-peer
databases". When a node departs, its entire *subtree* is cut off from the
root until the tree is rebuilt, and the aggregate silently excludes all
of it.

This implementation makes that failure mode measurable: the tree is
rebuilt every ``rebuild_interval`` steps (a rebuild costs one flood, ~2
messages per overlay edge); between rebuilds, contributions of nodes
whose tree path to the root is broken are lost.
:func:`repro.experiments.related_work.tag_vs_churn` quantifies the
resulting error against churn rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.query import Query
from repro.core.result import RunningResult, UpdateRecord
from repro.db.aggregates import AggregateOp
from repro.db.relation import P2PDatabase
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.sim.metrics import RunMetrics


@dataclass
class TreeSnapshot:
    """One epoch's outcome: the (possibly truncated) aggregate."""

    estimate: float
    nodes_included: int
    nodes_lost: int  # alive nodes whose path to the root is broken


class TreeAggregationBaseline:
    """Continuous AVG via a (periodically rebuilt) aggregation tree."""

    def __init__(
        self,
        graph: OverlayGraph,
        database: P2PDatabase,
        query: Query,
        origin: int,
        rebuild_interval: int = 16,
        ledger: MessageLedger | None = None,
    ) -> None:
        if query.op is not AggregateOp.AVG:
            raise QueryError(
                f"the tree baseline implements AVG; got {query.op.value}"
            )
        if query.predicate is not None:
            raise QueryError("the tree baseline does not support predicates")
        if origin not in graph:
            raise QueryError(f"querying node {origin} is not in the overlay")
        if rebuild_interval < 1:
            raise QueryError(
                f"rebuild_interval must be >= 1, got {rebuild_interval}"
            )
        database.schema.validate_expression(query.expression)
        self._graph = graph
        self._database = database
        self._query = query
        self._origin = origin
        self._rebuild_interval = rebuild_interval
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.metrics = RunMetrics()
        self.result = RunningResult()
        self._parent: dict[int, int | None] = {}
        self._last_rebuild: int | None = None
        self.rebuilds = 0

    # ------------------------------------------------------------------
    # tree maintenance
    # ------------------------------------------------------------------

    def _rebuild_tree(self) -> None:
        """BFS spanning tree from the root; flood costs ~2 msgs per edge."""
        parent: dict[int, int | None] = {self._origin: None}
        frontier = deque([self._origin])
        while frontier:
            node = frontier.popleft()
            for neighbor in self._graph.neighbors(node):
                if neighbor not in parent:
                    parent[neighbor] = node
                    frontier.append(neighbor)
        self._parent = parent
        self.ledger.record_control(
            2 * self._graph.n_edges(), label="tree_rebuild"
        )
        self.rebuilds += 1

    def _included_nodes(self) -> tuple[list[int], int]:
        """Nodes whose whole path to the root still exists.

        Departed ancestors orphan entire subtrees — the TAG fragility the
        experiment measures. Returns (included, lost_alive_count).
        """
        reachable: dict[int, bool] = {self._origin: self._origin in self._graph}

        def path_intact(node: int) -> bool:
            cached = reachable.get(node)
            if cached is not None:
                return cached
            if node not in self._graph or node not in self._parent:
                reachable[node] = False
                return False
            parent = self._parent[node]
            ok = parent is not None and path_intact(parent)
            reachable[node] = ok
            return ok

        included = []
        lost = 0
        for node in self._graph.nodes():
            if node == self._origin or path_intact(node):
                included.append(node)
            else:
                lost += 1
        return included, lost

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def step(self, time: int) -> TreeSnapshot:
        """One epoch: (maybe) rebuild, then aggregate up the tree."""
        if (
            self._last_rebuild is None
            or time - self._last_rebuild >= self._rebuild_interval
        ):
            self._rebuild_tree()
            self._last_rebuild = time
        included, lost = self._included_nodes()
        expression = self._query.expression
        total = 0.0
        count = 0
        for node in included:
            store = self._database.store(node)
            if len(store):
                total += float(expression.evaluate_columns(store.columns()).sum())
                count += len(store)
            if node != self._origin:
                # one partial-aggregate message to the parent (one hop)
                self.ledger.record_push(1)
        if count == 0:
            raise QueryError("no reachable tuples; tree fully fragmented")
        estimate = total / count
        self.result.update(UpdateRecord(time=time, estimate=estimate))
        self.metrics.snapshot_queries += 1
        return TreeSnapshot(
            estimate=estimate, nodes_included=len(included), nodes_lost=lost
        )
