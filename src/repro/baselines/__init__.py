"""Non-sampling baselines for the communication-cost comparison (Fig. 5-b).

* :mod:`repro.baselines.push_all` — ``ALL + ALL``: every tuple's value is
  pushed to the querying node at every step (exact, maximally expensive).
* :mod:`repro.baselines.olston_filter` — ``ALL + FILTER``: adaptive
  bound-width filters per Olston et al. (SIGMOD'03); nodes push only
  values that escape their filter windows, and window widths adapt to
  update rates under a total-width budget that guarantees the same
  ``2 epsilon`` precision the paper configures.

Two in-network alternatives from the related work (Section VII) are also
implemented so the paper's qualitative claims about them are measurable:

* :mod:`repro.baselines.push_sum` — gossip aggregation (refs [4]/[8]);
* :mod:`repro.baselines.tree_aggregation` — TAG-style spanning-tree
  aggregation (ref [15]) with its churn fragility.

The sampling-based configurations (``ALL + INDEP`` and Digest itself) are
:class:`~repro.core.engine.DigestEngine` configurations, not separate
baselines — see :class:`~repro.core.engine.EngineConfig`.
"""

from repro.baselines.olston_filter import FilterConfig, OlstonFilterBaseline
from repro.baselines.push_all import PushAllBaseline
from repro.baselines.push_sum import PushSumBaseline, PushSumRun
from repro.baselines.tree_aggregation import (
    TreeAggregationBaseline,
    TreeSnapshot,
)

__all__ = [
    "FilterConfig",
    "OlstonFilterBaseline",
    "PushAllBaseline",
    "PushSumBaseline",
    "PushSumRun",
    "TreeAggregationBaseline",
    "TreeSnapshot",
]
