"""``ALL + FILTER``: adaptive-filter push baseline (Olston et al., SIGMOD'03).

Each data object (tuple) ``o`` carries a *filter window* of width ``W_o``
centered on its last reported value; the hosting node pushes a new value to
the querying node only when it escapes the window. For an AVG over ``N``
objects the answer's worst-case error is ``(1/N) * sum_o W_o / 2``, so the
total width budget ``sum_o W_o = 2 * epsilon_bound * N`` guarantees a
``+/- epsilon_bound`` precision interval — the paper configures the
user-defined interval so ``H - L < 2 epsilon``, making the comparison with
Digest's ``(epsilon, p)`` fair.

Width adaptation follows the original design: periodically every window
*shrinks* by a fixed fraction (a deterministic schedule each node applies
autonomously — no message), and the coordinator redistributes the freed
budget to the objects that streamed updates during the period (*growth*
messages, one per grown object, costed at the overlay hop distance).

Churn handling: a new tuple starts with the default width (the budget is
per-object, so precision is preserved as ``N`` changes); deleted tuples
surrender their width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.query import Query
from repro.core.result import RunningResult, UpdateRecord
from repro.db.aggregates import AggregateOp, estimate_from_mean
from repro.db.relation import P2PDatabase
from repro.errors import QueryError
from repro.network.graph import OverlayGraph
from repro.network.messaging import MessageLedger
from repro.sim.metrics import RunMetrics


@dataclass(frozen=True)
class FilterConfig:
    """Adaptive-filter tuning.

    ``epsilon_bound`` is the guaranteed half-width of the answer's
    precision interval (set it to the competing query's ``epsilon``).
    ``adjustment_period`` steps separate reallocations; each reallocation
    shrinks every window by ``shrink_fraction`` and regrows the freed
    budget across the objects that pushed during the period.
    """

    epsilon_bound: float
    adjustment_period: int = 8
    shrink_fraction: float = 0.05
    min_width_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.epsilon_bound <= 0:
            raise QueryError(
                f"epsilon_bound must be > 0, got {self.epsilon_bound}"
            )
        if self.adjustment_period < 1:
            raise QueryError(
                f"adjustment_period must be >= 1, got {self.adjustment_period}"
            )
        if not 0.0 <= self.shrink_fraction < 1.0:
            raise QueryError(
                f"shrink_fraction must be in [0, 1), got {self.shrink_fraction}"
            )


class OlstonFilterBaseline:
    """Continuous AVG evaluation with adaptive per-object filters."""

    def __init__(
        self,
        graph: OverlayGraph,
        database: P2PDatabase,
        query: Query,
        origin: int,
        config: FilterConfig,
        ledger: MessageLedger | None = None,
    ) -> None:
        if query.op is not AggregateOp.AVG:
            raise QueryError(
                "the filter baseline implements AVG (the paper's comparison "
                f"query); got {query.op.value}"
            )
        if query.predicate is not None:
            raise QueryError(
                "the filter baseline implements unfiltered AVG (per-object "
                "bound widths have no precision semantics under a predicate)"
            )
        if origin not in graph:
            raise QueryError(f"querying node {origin} is not in the overlay")
        database.schema.validate_expression(query.expression)
        self._graph = graph
        self._database = database
        self._query = query
        self._origin = origin
        self._config = config
        self.ledger = ledger if ledger is not None else MessageLedger()
        self.metrics = RunMetrics()
        self.result = RunningResult()
        self._default_width = 2.0 * config.epsilon_bound
        self._reported: dict[int, float] = {}
        self._widths: dict[int, float] = {}
        self._update_counts: dict[int, int] = {}
        self.total_pushes = 0
        self.reallocations = 0
        self._bootstrap()

    def _bootstrap(self) -> None:
        """Initial full report: every object registers its value and width.

        Counted as pushes (the system cannot answer before it has seen
        every object once); this matches the one-time setup cost of the
        filter scheme.
        """
        distances = self._graph.hop_distances(self._origin)
        expression = self._query.expression
        for tuple_id, node, row in self._database.iter_tuples():
            self._reported[tuple_id] = expression.evaluate(row)
            self._widths[tuple_id] = self._default_width
            self._update_counts[tuple_id] = 0
            if node != self._origin:
                self.ledger.record_push(distances.get(node, 0))
                self.total_pushes += 1

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def step(self, time: int) -> float:
        """One step: collect filter violations, maybe reallocate, answer."""
        distances = self._graph.hop_distances(self._origin)
        expression = self._query.expression
        live: set[int] = set()
        for tuple_id, node, row in self._database.iter_tuples():
            live.add(tuple_id)
            value = expression.evaluate(row)
            reported = self._reported.get(tuple_id)
            if reported is None:
                # churn brought a new object: register with default width
                self._reported[tuple_id] = value
                self._widths[tuple_id] = self._default_width
                self._update_counts[tuple_id] = 1
                if node != self._origin:
                    self.ledger.record_push(distances.get(node, 0))
                    self.total_pushes += 1
                continue
            if abs(value - reported) > self._widths[tuple_id] / 2.0:
                self._reported[tuple_id] = value
                self._update_counts[tuple_id] += 1
                if node != self._origin:
                    self.ledger.record_push(distances.get(node, 0))
                    self.total_pushes += 1
        for tuple_id in list(self._reported):
            if tuple_id not in live:
                del self._reported[tuple_id]
                del self._widths[tuple_id]
                self._update_counts.pop(tuple_id, None)
        if time > 0 and time % self._config.adjustment_period == 0:
            self._reallocate(distances)
        aggregate = self._answer()
        self.result.update(UpdateRecord(time=time, estimate=aggregate))
        self.metrics.snapshot_queries += 1
        return aggregate

    def _reallocate(self, distances: dict[int, int]) -> None:
        """Shrink every window; regrow the freed budget on streaming objects."""
        config = self._config
        min_width = self._default_width * config.min_width_fraction
        freed = 0.0
        for tuple_id, width in self._widths.items():
            shrunk = max(min_width, width * (1.0 - config.shrink_fraction))
            freed += width - shrunk
            self._widths[tuple_id] = shrunk
        streamers = [t for t, count in self._update_counts.items() if count > 0]
        if streamers and freed > 0:
            total_updates = sum(self._update_counts[t] for t in streamers)
            for tuple_id in streamers:
                share = freed * self._update_counts[tuple_id] / total_updates
                self._widths[tuple_id] += share
                node = self._database.locate(tuple_id)
                if node is not None and node != self._origin:
                    # growth notification travels to the hosting node
                    self.ledger.record_control(
                        distances.get(node, 0), label="filter_growth"
                    )
        self._update_counts = {t: 0 for t in self._widths}
        self.reallocations += 1

    def _answer(self) -> float:
        if not self._reported:
            raise QueryError("no objects registered; relation is empty")
        mean = float(np.mean(list(self._reported.values())))
        return estimate_from_mean(
            self._query.op, mean, self._database.n_tuples
        )

    def guaranteed_half_width(self) -> float:
        """Current worst-case answer error ``(1/N) sum W_o / 2``."""
        if not self._widths:
            return 0.0
        return float(np.mean(list(self._widths.values()))) / 2.0
