# Convenience targets for the Digest reproduction.

PYTHON ?= python

.PHONY: install test bench results examples full-scale clean lint typecheck check

install:
	$(PYTHON) -m pip install -e . || $(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# digest-analyzer (stdlib-only, always available) + ruff when installed.
# See docs/DEVELOPMENT.md for the DGL rule catalog (per-file DGL001-008,
# cross-module DGL009-013) and the baseline/pragma policy.
lint:
	$(PYTHON) -m tools.digest_analyzer
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests tools benchmarks examples; \
	else \
		echo "ruff not installed -- skipping (pip install ruff)"; \
	fi

typecheck:
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed -- skipping (pip install mypy)"; \
	fi

# everything CI runs, in CI's order
check: lint typecheck test

test-all: export REPRO_RUN_EXAMPLES=1
test-all:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

results: bench
	$(PYTHON) benchmarks/collect_results.py

examples:
	@for example in examples/*.py; do \
		echo "=== $$example"; \
		$(PYTHON) $$example || exit 1; \
	done

# the paper's published sizes; takes tens of minutes
full-scale: export REPRO_BENCH_SCALE=1
full-scale:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only
	$(PYTHON) benchmarks/collect_results.py

clean:
	rm -rf benchmarks/results .pytest_cache .hypothesis
	find . -name __pycache__ -type d -exec rm -rf {} +
