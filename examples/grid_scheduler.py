"""Grid scheduler: the paper's second motivating scenario (Section I).

    "Notify me whenever the total amount of available memory is more
     than 4GB."

Runs a SUM query over the churning MEMORY workload (SETI@HOME surrogate):
nodes join and leave, tuples appear and vanish, and the engine keeps a
fixed-precision running total that a task scheduler can threshold. SUM
scales a mean estimate by the relation size N, so this example also shows
the oracle-free mode where N itself is estimated by capture-recapture
sampling.

Run:  python examples/grid_scheduler.py
"""

import dataclasses

import numpy as np

from repro import DigestEngine, EngineConfig, Precision
from repro.core.query import ContinuousQuery, parse_query
from repro.core.threshold import ThresholdMonitor
from repro.datasets.memory import MemoryConfig, MemoryDataset


def main() -> None:
    config = dataclasses.replace(
        MemoryConfig().scaled(0.25), leave_probability=0.004
    )
    instance = MemoryDataset(config, seed=5).build()
    print(
        f"computing grid: {len(instance.graph)} nodes, "
        f"{instance.database.n_tuples} computing units (churning)"
    )

    # total available memory, in the workload's MB-scale units
    threshold = 1.02 * instance.true_average() * instance.database.n_tuples
    continuous = ContinuousQuery(
        parse_query("SELECT SUM(available_memory) FROM R"),
        Precision(
            delta=0.005 * threshold,  # re-evaluate on 0.5% total drift
            epsilon=0.02 * threshold,  # 2% absolute error tolerated
            confidence=0.95,
        ),
        duration=instance.n_steps,
    )
    origin = instance.graph.nodes()[0]
    instance.churn.protect(origin)  # the scheduler node stays up
    engine = DigestEngine(
        instance.graph,
        instance.database,
        continuous,
        origin=origin,
        rng=np.random.default_rng(17),
        config=EngineConfig(scheduler="pred", evaluator="repeated"),
    )

    # confidence-gated crossing detection: a flip is declared only when
    # the estimate's confidence interval clears the threshold, so noise
    # inside the band never flaps the scheduler
    def on_crossing(event):
        print(
            f"t={event.time:3d}  NOTIFY: total available memory "
            f"{event.estimate:,.0f} (+/-{event.half_width:,.0f}) is "
            f"{event.state.value.upper()} the {threshold:,.0f} threshold"
        )

    monitor = ThresholdMonitor(
        threshold, confidence=0.95, callback=on_crossing
    )
    for t in range(instance.n_steps):
        instance.step(t)
        estimate = engine.step(t)
        if estimate is not None:
            monitor.offer(estimate)

    truth = instance.true_average() * instance.database.n_tuples
    print(
        f"\nfinal: estimated total {engine.result.last().estimate:,.0f} "
        f"vs exact {truth:,.0f}; churn: {instance.nodes_joined} joins, "
        f"{instance.nodes_left} leaves, "
        f"{instance.tuples_lost_to_churn} tuples lost; "
        f"{engine.metrics.snapshot_queries} snapshot queries, "
        f"{engine.ledger.total} messages; "
        f"{monitor.uncertain_estimates} estimates were too close to call"
    )


if __name__ == "__main__":
    main()
