"""Quickstart: a fixed-precision continuous AVG query over a P2P database.

Builds a 200-node unstructured overlay holding a single-attribute
relation, registers the continuous query

    SELECT AVG(temperature) FROM R   [delta=2, epsilon=2, p=0.95]

at node 0, and runs 60 time steps of slow drift. Digest (PRED3 + repeated
sampling by default) re-evaluates only when the extrapolated aggregate has
moved by delta, and sizes each snapshot's sample by the confidence
requirement.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ContinuousQuery,
    DigestEngine,
    Expression,
    OverlayGraph,
    P2PDatabase,
    Precision,
    Schema,
    parse_query,
    power_law_topology,
)


def main() -> None:
    rng = np.random.default_rng(7)

    # --- substrate: overlay + horizontally partitioned relation ---------
    graph = OverlayGraph(power_law_topology(200, rng=rng), n_nodes=200)
    database = P2PDatabase(Schema(("temperature",)), graph.nodes())
    tuple_ids = []
    for node in graph.nodes():
        for _ in range(int(rng.integers(2, 8))):
            tuple_ids.append(
                database.insert(node, {"temperature": float(rng.normal(70, 8))})
            )
    print(f"overlay: {len(graph)} nodes, relation: {database.n_tuples} tuples")

    # --- the continuous query ------------------------------------------
    continuous = ContinuousQuery(
        parse_query("SELECT AVG(temperature) FROM R"),
        Precision(delta=2.0, epsilon=2.0, confidence=0.95),
        duration=60,
    )
    engine = DigestEngine(graph, database, continuous, origin=0, rng=rng)
    print(f"query: {continuous}")

    # --- drive the world and the engine ---------------------------------
    for t in range(60):
        # slow sinusoidal drift + per-tuple noise
        drift = 0.25 * np.sin(t / 6.0)
        for tid in tuple_ids:
            current = database.read(tid)["temperature"]
            database.update(
                tid, {"temperature": current + drift + rng.normal(0, 0.3)}
            )
        estimate = engine.step(t)
        if estimate is not None:
            truth = database.exact_values(Expression("temperature")).mean()
            print(
                f"t={t:2d}  snapshot: estimate={estimate.aggregate:6.2f}  "
                f"truth={truth:6.2f}  samples={estimate.n_total}"
                f" (fresh={estimate.n_fresh})"
            )

    metrics = engine.metrics
    print(
        f"\nran {metrics.snapshot_queries} snapshot queries over 60 steps, "
        f"{metrics.samples_total} samples total "
        f"({metrics.samples_fresh} fresh), "
        f"{engine.ledger.total} overlay messages"
    )


if __name__ == "__main__":
    main()
