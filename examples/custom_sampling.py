"""Using the sampling operator directly with custom weight functions.

The bottom tier of Digest is independently useful: given any *local*
weight function, the Metropolis random walk samples nodes proportionally
to it with no global coordination (Section V). This example:

1. samples nodes uniformly and verifies the empirical distribution;
2. samples nodes proportionally to a "reputation" score;
3. runs two-stage tuple sampling and compares its estimator against
   cluster sampling on a relation with strong intra-node correlation
   (the Section III argument for two-stage);
4. estimates the network size by capture-recapture, using nothing but
   node samples.

Run:  python examples/custom_sampling.py
"""

import numpy as np

from repro import (
    Expression,
    MessageLedger,
    OverlayGraph,
    P2PDatabase,
    SamplerConfig,
    SamplingOperator,
    Schema,
    power_law_topology,
)
from repro.sampling.size_estimation import estimate_network_size
from repro.sampling.weights import table_weights, uniform_weights


def main() -> None:
    rng = np.random.default_rng(21)
    n_nodes = 300
    graph = OverlayGraph(power_law_topology(n_nodes, rng=rng), n_nodes=n_nodes)
    database = P2PDatabase(Schema(("v",)), graph.nodes())
    # strongly clustered content: each node's tuples share a local mean
    for node in graph.nodes():
        local_mean = float(rng.normal(0.0, 10.0))
        for _ in range(4):
            database.insert(node, {"v": local_mean + float(rng.normal(0.0, 1.0))})

    ledger = MessageLedger()
    operator = SamplingOperator(graph, rng, ledger, SamplerConfig(gamma=0.02))

    # --- 1. uniform node sampling ---------------------------------------
    samples = operator.sample_nodes(uniform_weights(), 3000, origin=0)
    counts = np.bincount(samples, minlength=n_nodes)
    print(
        "uniform node sampling: min/mean/max visits per node = "
        f"{counts.min()}/{counts.mean():.1f}/{counts.max()} "
        f"({ledger.total} messages so far)"
    )

    # --- 2. reputation-weighted sampling ---------------------------------
    reputation = {node: float(1 + (node % 5)) for node in graph.nodes()}
    samples = operator.sample_nodes(table_weights(reputation), 5000, origin=0)
    by_reputation = {}
    for node in samples:
        by_reputation.setdefault(reputation[node], 0)
        by_reputation[reputation[node]] += 1
    print("reputation-weighted sampling (hit share should scale ~linearly):")
    total_rep = sum(reputation.values())
    for score in sorted(by_reputation):
        share = by_reputation[score] / len(samples)
        expected = (
            sum(w for w in reputation.values() if w == score) / total_rep
        )
        print(f"  weight {score:.0f}: observed {share:.3f}, expected {expected:.3f}")

    # --- 3. two-stage vs cluster sampling --------------------------------
    truth = database.exact_values(Expression("v")).mean()
    two_stage = [
        s.row["v"] for s in operator.sample_tuples(database, 200, origin=0)
    ]
    cluster_values = []
    while len(cluster_values) < 200:
        _, batch = operator.cluster_sample(database, origin=0)
        cluster_values.extend(s.row["v"] for s in batch)
    cluster_values = cluster_values[:200]
    print(
        f"AVG estimation with 200 tuples: truth={truth:+.3f}, "
        f"two-stage={np.mean(two_stage):+.3f}, "
        f"cluster={np.mean(cluster_values):+.3f} "
        "(cluster suffers from intra-node correlation)"
    )

    # --- 4. network-size estimation --------------------------------------
    estimate = estimate_network_size(operator, origin=0, phase_size=100)
    print(f"capture-recapture network size: ~{estimate:.0f} (truth: {n_nodes})")


if __name__ == "__main__":
    main()
