"""A Digest node multiplexing several continuous queries.

The paper's architecture gives every peer its own Digest instance serving
"the continuous queries received from the local user" (Section III).
:class:`repro.core.node.DigestNode` runs many queries over one shared
sampling operator, and — because uniform tuple samples are query-agnostic
— queries evaluated at the same occasion *reuse* each other's samples.

This example registers four queries with different shapes over one
workload and reports how much the sharing saved.

Run:  python examples/multi_query_node.py
"""

import numpy as np

from repro import DigestNode, EngineConfig, Precision
from repro.core.query import ContinuousQuery, parse_query
from repro.datasets.temperature import TemperatureConfig, TemperatureDataset


def main() -> None:
    instance = TemperatureDataset(TemperatureConfig().scaled(0.08), seed=9).build()
    sigma = instance.config.expected_sigma
    steps = min(instance.n_steps, 60)
    print(
        f"workload: {len(instance.graph)} nodes, "
        f"{instance.database.n_tuples} tuples, {steps} steps"
    )

    node = DigestNode(
        instance.graph,
        instance.database,
        origin=0,
        rng=np.random.default_rng(13),
        share_samples=True,
    )

    queries = {
        "area average": (
            "SELECT AVG(temperature) FROM R",
            Precision(delta=sigma, epsilon=0.25 * sigma, confidence=0.95),
            EngineConfig(scheduler="pred", evaluator="repeated"),
        ),
        "heat-wave count": (
            "SELECT COUNT(temperature) FROM R WHERE temperature > 70",
            Precision(delta=30.0, epsilon=40.0, confidence=0.9),
            EngineConfig(scheduler="all", evaluator="independent"),
        ),
        "degree-sum": (
            "SELECT SUM(temperature) FROM R",
            Precision(delta=800.0, epsilon=1200.0, confidence=0.95),
            EngineConfig(scheduler="pred", evaluator="repeated"),
        ),
        "cold spots": (
            "SELECT COUNT(temperature) FROM R WHERE temperature < 50",
            Precision(delta=30.0, epsilon=40.0, confidence=0.9),
            EngineConfig(scheduler="all", evaluator="independent"),
        ),
    }
    handles = {
        name: node.register(
            ContinuousQuery(parse_query(text), precision, duration=steps),
            config,
        )
        for name, (text, precision, config) in queries.items()
    }

    for t in range(steps):
        instance.step(t)
        executed = node.step(t)
        if t % 20 == 0 and executed:
            summary = ", ".join(
                f"{name}={executed[qid].aggregate:,.1f}"
                for name, qid in handles.items()
                if qid in executed
            )
            print(f"t={t:3d}  {summary}")

    print("\nper-query cost:")
    for name, qid in handles.items():
        metrics = node.engine(qid).metrics
        print(
            f"  {name:16s} {metrics.snapshot_queries:3d} snapshots, "
            f"{metrics.samples_total:5d} samples"
        )
    print(
        f"\nshared-occasion sampling saved "
        f"{node.samples_saved_by_sharing()} tuple draws "
        f"({node.ledger.total} total messages)"
    )


if __name__ == "__main__":
    main()
