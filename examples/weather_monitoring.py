"""Weather monitoring: the paper's motivating scenario (Section I).

    "Over next 24 hours, notify me whenever the average temperature of
     the area changes more than 2 F."

Uses the calibrated synthetic TEMPERATURE workload (Table II surrogate) at
a reduced scale, issues the continuous query with delta = 2 F, and prints
a notification every time the running result updates — comparing Digest's
schedule against what naive per-step re-evaluation would have cost.

Run:  python examples/weather_monitoring.py
"""

import numpy as np

from repro import DigestEngine, EngineConfig, Expression, Precision
from repro.core.query import ContinuousQuery, parse_query
from repro.datasets.temperature import TemperatureConfig, TemperatureDataset


def main() -> None:
    config = TemperatureConfig().scaled(0.08)  # 42 nodes, 640 sensor units
    instance = TemperatureDataset(config, seed=3).build()
    print(
        f"weather network: {len(instance.graph)} stations, "
        f"{instance.database.n_tuples} sensor units, "
        f"{instance.n_steps} twelve-hour steps"
    )

    continuous = ContinuousQuery(
        parse_query("SELECT AVG(temperature) FROM R"),
        Precision(delta=2.0, epsilon=1.0, confidence=0.95),
        duration=instance.n_steps,
    )
    engine = DigestEngine(
        instance.graph,
        instance.database,
        continuous,
        origin=0,
        rng=np.random.default_rng(11),
        config=EngineConfig(scheduler="pred", evaluator="repeated", pred_points=3),
    )

    def notify(record):
        day, half = divmod(record.time, 2)
        truth = instance.true_average()
        print(
            f"day {day:3d}{'pm' if half else 'am'}  NOTIFY: average is "
            f"{record.estimate:5.1f} F (exact {truth:5.1f} F, "
            f"{record.n_samples} samples)"
        )

    # "notify me whenever the average changes more than 2F" — the query's
    # own delta doubles as the notification threshold
    engine.subscribe(notify)

    for t in range(instance.n_steps):
        instance.step(t)
        engine.step(t)

    metrics = engine.metrics
    print(
        f"\nDigest executed {metrics.snapshot_queries} snapshot queries where "
        f"naive continuous querying would have executed {instance.n_steps} "
        f"({100 * (1 - metrics.snapshot_queries / instance.n_steps):.0f}% fewer); "
        f"{metrics.samples_fresh} fresh samples, "
        f"{engine.ledger.total} messages"
    )


if __name__ == "__main__":
    main()
